//! Restoring a process from (possibly rewritten) images.
//!
//! Two page paths exist (DESIGN §12): the **copying** path writes every
//! dumped page into the staged address space byte by byte
//! ([`build_process`]), and the **zero-copy** path installs refcounted
//! [`SharedFrame`](dynacut_vm::SharedFrame) handles from the
//! [`PageStore`] instead ([`build_process_shared`],
//! [`RestoreTransaction::prepare_shared`]), deferring any physical copy
//! to the first guest write (CoW). Both produce fingerprint-identical
//! kernels; the copying path remains the oracle the test battery checks
//! the fast path against.

use crate::images::*;
use crate::page_store::{PageKey, PageStore, SharedPages};
use crate::CriuError;
use dynacut_obj::{materialize, Image, PAGE_SIZE};
use dynacut_vm::{
    CpuState, FdTable, FileDesc, Flags, Kernel, LoadedModule, Pid, Process, VfsFile,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Maps module names to their binaries, the restore-time analogue of the
/// filesystem CRIU reads file-backed mappings from.
#[derive(Debug, Clone, Default)]
pub struct ModuleRegistry {
    modules: BTreeMap<String, Arc<Image>>,
}

impl ModuleRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a binary under its image name.
    pub fn insert(&mut self, image: Arc<Image>) {
        self.modules.insert(image.name.clone(), image);
    }

    /// Looks up a binary by name.
    pub fn get(&self, name: &str) -> Option<&Arc<Image>> {
        self.modules.get(name)
    }

    /// Builds a registry from a process's loaded modules.
    pub fn from_modules<'a>(modules: impl IntoIterator<Item = &'a LoadedModule>) -> Self {
        let mut registry = ModuleRegistry::new();
        for module in modules {
            registry.insert(Arc::clone(&module.image));
        }
        registry
    }
}

/// A fully-built restored process that has not touched the kernel yet.
///
/// [`build_process`] produces these; [`RestoreTransaction::commit`] swaps
/// them in. Keeping the build phase kernel-free is what makes the restore
/// transactional: every expensive, failure-prone step (module lookup,
/// text materialization, pagemap consistency checks) happens before the
/// first original process is disturbed.
#[derive(Debug, Clone)]
pub struct StagedProcess {
    /// The process, ready for [`Kernel::insert_process`].
    pub proc: Process,
    /// Listening ports its descriptor table references.
    pub listeners: Vec<u16>,
    /// Connections its descriptor table references (to leave repair mode
    /// at commit).
    pub conns: Vec<dynacut_vm::ConnId>,
}

/// Builds a restored [`Process`] from its image set **without mutating
/// the kernel** — the kernel is only consulted read-only for VFS file
/// contents. The returned [`StagedProcess`] carries the network side
/// effects (listeners to ensure, connections to unrepair) for the commit
/// phase to apply.
///
/// Pages recorded in the pagemap are written verbatim (so image edits take
/// effect). Executable VMAs with **no** dumped pages are reconstructed
/// from the binary in `registry` — the stock-CRIU file-backed-page path
/// that silently discards text rewrites (see
/// [`DumpOptions`](crate::DumpOptions)).
///
/// # Errors
///
/// Fails if a module is missing from the registry or the images are
/// inconsistent.
pub fn build_process(
    kernel: &Kernel,
    image: &ProcessImage,
    registry: &ModuleRegistry,
) -> Result<StagedProcess, CriuError> {
    build_process_with(kernel, image, registry, PageSource::Inline(&image.pages))
}

/// Builds a restored [`Process`] whose dumped pages are backed by
/// zero-copy [`SharedFrame`](dynacut_vm::SharedFrame) handles out of
/// `store` instead of byte copies.
///
/// `keys[i]` names the frame for `image.pagemap.pages[i]`; `image.pages`
/// is ignored (and typically empty — the payload lives in the store).
/// Every installed page starts shared and read-only-backed; the first
/// guest write copy-on-writes it private. Guest-visible state is
/// bit-identical to [`build_process`] of the materialized payload.
///
/// # Errors
///
/// Fails like [`build_process`], and additionally with
/// [`CriuError::Inconsistent`] if a key has no live frame in the store
/// or the key list disagrees with the pagemap.
pub fn build_process_shared(
    kernel: &Kernel,
    image: &ProcessImage,
    registry: &ModuleRegistry,
    keys: &[PageKey],
    store: &PageStore,
) -> Result<StagedProcess, CriuError> {
    build_process_with(kernel, image, registry, PageSource::Shared { keys, store })
}

/// Where a staged process's dumped pages come from.
enum PageSource<'a> {
    /// Byte payload carried inline in the image (the copying path).
    Inline(&'a PagesImage),
    /// Refcounted frames in a page store (the zero-copy path).
    Shared {
        keys: &'a [PageKey],
        store: &'a PageStore,
    },
}

fn build_process_with(
    kernel: &Kernel,
    image: &ProcessImage,
    registry: &ModuleRegistry,
    source: PageSource<'_>,
) -> Result<StagedProcess, CriuError> {
    if dynacut_vm::fault::hit(dynacut_vm::fault::FaultPhase::RestoreBuild) {
        return Err(CriuError::FaultInjected(
            dynacut_vm::fault::FaultPhase::RestoreBuild,
        ));
    }
    let pid = image.core.pid;
    let mut proc = Process::new(pid, &image.core.name);
    proc.parent = image.core.parent;

    // 1. VMAs.
    for vma in &image.mm.vmas {
        proc.mem
            .map(vma.start, vma.end - vma.start, vma.perms, &vma.name)?;
    }

    // 2. Re-attach modules from the registry (also used to rebuild
    //    file-backed text where pages were not dumped).
    let mut modules = Vec::with_capacity(image.core.modules.len());
    for module_ref in &image.core.modules {
        let binary = registry
            .get(&module_ref.name)
            .ok_or_else(|| CriuError::UnknownModule(module_ref.name.clone()))?;
        modules.push(LoadedModule {
            image: Arc::clone(binary),
            base: module_ref.base,
        });
    }

    // 3. File-backed reconstruction for text not present in the pagemap
    //    (stock-CRIU behaviour).
    let dumped: std::collections::BTreeSet<u64> = image.pagemap.pages.iter().copied().collect();
    let globals: BTreeMap<&str, u64> = modules
        .iter()
        .flat_map(|m| {
            m.image
                .symbols
                .iter()
                .map(move |(name, def)| (name.as_str(), m.base + def.offset))
        })
        .collect();
    for module in &modules {
        let segments = materialize(&module.image, module.base, |symbol| {
            globals.get(symbol).copied()
        })
        .map_err(|err| CriuError::Inconsistent(err.to_string()))?;
        for segment in &segments {
            if !segment.perms.exec {
                continue; // only text is file-backed in our model
            }
            let mut offset = 0usize;
            while offset < segment.bytes.len() {
                let page_base = segment.vaddr + offset as u64;
                let chunk = ((PAGE_SIZE as usize).min(segment.bytes.len() - offset)).max(1);
                // With stock CRIU options the page-fault handler always
                // reconstructs file-backed text from the binary; dumped
                // copies of text pages (if any) are irrelevant.
                if !image.exec_pages_dumped || !dumped.contains(&page_base) {
                    proc.mem
                        .write_unchecked(page_base, &segment.bytes[offset..offset + chunk]);
                }
                offset += PAGE_SIZE as usize;
            }
        }
    }
    proc.modules = modules;

    // 4. Dumped pages: copied verbatim, or installed as shared frames
    //    (the zero-copy path — same guest-visible effect, no byte copy
    //    until a write CoW-faults the page private).
    match source {
        PageSource::Inline(pages) => {
            if pages.bytes.len() != image.pagemap.pages.len() * PAGE_SIZE as usize {
                return Err(CriuError::Inconsistent(format!(
                    "pages.img holds {} bytes but pagemap lists {} pages",
                    pages.bytes.len(),
                    image.pagemap.pages.len()
                )));
            }
            for (index, &page_base) in image.pagemap.pages.iter().enumerate() {
                if skip_undumped_text(image, page_base) {
                    continue;
                }
                let start = index * PAGE_SIZE as usize;
                proc.mem
                    .write_unchecked(page_base, &pages.bytes[start..start + PAGE_SIZE as usize]);
            }
        }
        PageSource::Shared { keys, store } => {
            if dynacut_vm::fault::hit(dynacut_vm::fault::FaultPhase::CowMaterialize) {
                return Err(CriuError::FaultInjected(
                    dynacut_vm::fault::FaultPhase::CowMaterialize,
                ));
            }
            if keys.len() != image.pagemap.pages.len() {
                return Err(CriuError::Inconsistent(format!(
                    "{} page handles but pagemap lists {} pages",
                    keys.len(),
                    image.pagemap.pages.len()
                )));
            }
            for (&key, &page_base) in keys.iter().zip(&image.pagemap.pages) {
                if skip_undumped_text(image, page_base) {
                    continue;
                }
                let frame = store.frame(key).ok_or_else(|| {
                    CriuError::Inconsistent(format!("{key} is not in the page store"))
                })?;
                proc.mem.install_shared_page(page_base, frame);
            }
        }
    }

    // 5. Registers and signal state.
    proc.cpu = CpuState {
        regs: image.core.regs,
        pc: image.core.pc,
        flags: Flags::from_bits(image.core.flags_bits),
    };
    proc.sigactions = image.core.sigactions;
    proc.signal_depth = image.core.signal_depth;
    proc.insns_retired = image.core.insns_retired;
    proc.syscall_filter = image.core.syscall_filter;

    // 6. Descriptors. Network side effects (listener registration,
    //    leaving repair mode) are recorded for the commit phase, not
    //    applied here.
    let mut fds = FdTable::new();
    let mut listeners = Vec::new();
    let mut conn_ids = Vec::new();
    for (fd, entry) in &image.files.fds {
        let desc = match entry {
            FdImage::Console => FileDesc::Console,
            FdImage::File { path, pos } => FileDesc::File {
                file: VfsFile {
                    path: path.clone(),
                    contents: kernel.vfs_contents(path).unwrap_or_default(),
                },
                pos: *pos,
            },
            FdImage::Socket => FileDesc::Socket,
            FdImage::Listener { port } => {
                listeners.push(*port);
                FileDesc::Listener { port: *port }
            }
            FdImage::Conn { id } => {
                conn_ids.push(*id);
                FileDesc::Conn(*id)
            }
        };
        fds.insert(*fd, desc);
    }
    proc.fds = fds;

    Ok(StagedProcess {
        proc,
        listeners,
        conns: conn_ids,
    })
}

/// Stock-CRIU text handling: with `exec_pages_dumped` off, executable
/// pages always come from the binary, never from the dump.
fn skip_undumped_text(image: &ProcessImage, page_base: u64) -> bool {
    if image.exec_pages_dumped {
        return false;
    }
    image
        .mm
        .vma_at(page_base)
        .map(|vma| vma.perms.exec)
        .unwrap_or(false)
}

/// A multi-process restore staged as a transaction: `prepare` builds
/// every process without touching the kernel, `commit` swaps them in
/// all-or-nothing.
///
/// This is the fix for the classic restore hazard — removing the
/// original processes first and only then discovering that one of the
/// replacement images cannot be restored, leaving the application dead.
/// With the transaction, any failure during
/// [`prepare`](RestoreTransaction::prepare) leaves the kernel untouched, and any
/// failure during [`commit`](RestoreTransaction::commit) rolls back the
/// processes already swapped, restoring the originals bit-identically.
#[derive(Debug)]
pub struct RestoreTransaction {
    staged: Vec<StagedProcess>,
}

/// Receipt for a committed [`RestoreTransaction`], holding everything
/// needed to reverse it if a *later* step of the caller's own
/// transaction (e.g. persisting the checkpoint baseline) fails.
#[derive(Debug)]
pub struct CommittedRestore {
    /// The original processes displaced by the commit, with `None` for
    /// pids that had no original (a fresh restore, not a swap).
    originals: Vec<(Pid, Option<Process>)>,
    /// Pids inserted by the commit.
    restored: Vec<Pid>,
    /// Listening ports the commit created (as opposed to ports that were
    /// already listening).
    new_listeners: Vec<u16>,
}

impl CommittedRestore {
    /// The restored pids, in checkpoint order.
    pub fn pids(&self) -> &[Pid] {
        &self.restored
    }

    /// Reverses the commit: removes the restored processes, re-inserts
    /// the displaced originals, and closes listeners the commit created.
    /// Connections are deliberately left established — the rollback path
    /// re-enters/leaves repair mode as part of its own protocol.
    pub fn undo(self, kernel: &mut Kernel) {
        for pid in &self.restored {
            let _ = kernel.remove_process(*pid);
        }
        for (_, original) in self.originals {
            if let Some(proc) = original {
                // The original keeps its block cache: its address space
                // (and the page generations every cached block is
                // validated against) is swapped back with it, so each
                // entry is exactly as valid as it was at dump time.
                // This is what makes rollback's version swap free — the
                // pristine decode re-dispatches without a single
                // re-decode (DESIGN §11).
                let _ = kernel.insert_process(proc);
            }
        }
        for port in &self.new_listeners {
            kernel.close_listener(*port);
        }
    }

    /// Carries each displaced original's block cache into its live
    /// replacement, under a bumped rewrite epoch — the customize
    /// commit's alternative to flushing.
    ///
    /// For every code page the original's cache had registered, the
    /// replacement's generation is seeded so that validation gives the
    /// right answer under the *replacement's* address space:
    ///
    /// - pages whose bytes are unchanged (and still mapped executable)
    ///   keep the original's generation — blocks over them can be
    ///   version-swapped forward and re-dispatched without a re-decode;
    /// - pages the rewrite touched (or unmapped, or de-exec'd) are
    ///   seeded one *past* the original's generation — strictly greater
    ///   than any snapshot a carried block can hold, so those blocks
    ///   can never validate and are re-decoded under the new epoch.
    ///
    /// Seeding only ever raises generations (the safe direction: a
    /// spurious re-decode, never a stale hit), and the epoch bump means
    /// carried entries surface exclusively through the dispatcher's
    /// validated `swap_forward` probe. Fresh restores (no displaced
    /// original) keep the cold cache `commit` gave them.
    pub fn carry_block_caches(&self, kernel: &mut Kernel) {
        for (pid, original) in &self.originals {
            let Some(original) = original else { continue };
            let Ok(replacement) = kernel.process_mut(*pid) else {
                continue;
            };
            let mut page = vec![0u8; PAGE_SIZE as usize];
            let mut original_page = vec![0u8; PAGE_SIZE as usize];
            for (base, gen) in original.mem.code_pages() {
                let executable = replacement
                    .mem
                    .vma_at(base)
                    .map(|vma| vma.perms.exec)
                    .unwrap_or(false);
                let unchanged = executable && {
                    replacement.mem.read_unchecked(base, &mut page);
                    original.mem.read_unchecked(base, &mut original_page);
                    page == original_page
                };
                let seed = if unchanged { gen } else { gen + 1 };
                replacement.mem.seed_code_page_gen(base, seed);
            }
            replacement.block_cache = original.block_cache.clone();
            replacement.block_cache.bump_epoch();
        }
    }
}

impl RestoreTransaction {
    /// Wraps already-built staged processes (the store's zero-copy
    /// restore resolves handles itself and only needs the commit
    /// machinery).
    pub(crate) fn from_staged(staged: Vec<StagedProcess>) -> Self {
        RestoreTransaction { staged }
    }

    /// Builds every process of `checkpoint` without mutating the kernel.
    ///
    /// # Errors
    ///
    /// Fails on the first image that cannot be built; the kernel is
    /// untouched in that case.
    pub fn prepare(
        kernel: &Kernel,
        checkpoint: &CheckpointImage,
        registry: &ModuleRegistry,
    ) -> Result<Self, CriuError> {
        let staged = checkpoint
            .procs
            .iter()
            .map(|image| build_process(kernel, image, registry))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(RestoreTransaction { staged })
    }

    /// Builds every process of `checkpoint` with its dumped pages backed
    /// by zero-copy frames out of `store` instead of byte copies.
    ///
    /// The checkpoint's payload is interned into the store for the
    /// duration of the call — so identical pages across processes (and
    /// against checkpoints already stored, e.g. an earlier replica's
    /// baseline) are physically copied at most once — and **every
    /// reference taken here is released before returning**, on success
    /// and on every error path alike. The staged processes keep the
    /// frames alive through their own handles, so the store's refcounts
    /// are exactly what they were before the call: zero leaked
    /// `SharedPages` refs by construction, which the fault-injection
    /// battery asserts.
    ///
    /// # Errors
    ///
    /// Fails like [`prepare`](RestoreTransaction::prepare); the kernel is
    /// untouched and the store's refcounts are unchanged.
    pub fn prepare_shared(
        kernel: &Kernel,
        checkpoint: &CheckpointImage,
        registry: &ModuleRegistry,
        store: &mut PageStore,
    ) -> Result<Self, CriuError> {
        let mut handles: Vec<SharedPages> = Vec::with_capacity(checkpoint.procs.len());
        // The references below were all taken within this call, so a
        // release can only miss if the store itself is corrupt; on error
        // paths the original error stays the one reported.
        let release_all = |handles: &[SharedPages], store: &mut PageStore| {
            let mut first_miss = None;
            for handle in handles {
                if let Err(err) = handle.release(store) {
                    first_miss.get_or_insert(err);
                }
            }
            match first_miss {
                Some(err) => Err(err),
                None => Ok(()),
            }
        };
        let mut staged = Vec::with_capacity(checkpoint.procs.len());
        for image in &checkpoint.procs {
            if dynacut_vm::fault::hit(dynacut_vm::fault::FaultPhase::RestoreHandles) {
                let _ = release_all(&handles, store);
                return Err(CriuError::FaultInjected(
                    dynacut_vm::fault::FaultPhase::RestoreHandles,
                ));
            }
            if image.pages.bytes.len() != image.pagemap.pages.len() * PAGE_SIZE as usize {
                let _ = release_all(&handles, store);
                return Err(CriuError::Inconsistent(format!(
                    "pages.img holds {} bytes but pagemap lists {} pages",
                    image.pages.bytes.len(),
                    image.pagemap.pages.len()
                )));
            }
            let shared = match SharedPages::intern(store, &image.pages) {
                Ok(shared) => shared,
                Err(err) => {
                    let _ = release_all(&handles, store);
                    return Err(err);
                }
            };
            handles.push(shared);
            let keys = handles.last().expect("just pushed").keys().to_vec();
            match build_process_shared(kernel, image, registry, &keys, store) {
                Ok(built) => staged.push(built),
                Err(err) => {
                    let _ = release_all(&handles, store);
                    return Err(err);
                }
            }
        }
        release_all(&handles, store)?;
        Ok(RestoreTransaction { staged })
    }

    /// Pids this transaction will restore, in checkpoint order.
    pub fn pids(&self) -> Vec<Pid> {
        self.staged.iter().map(|staged| staged.proc.pid).collect()
    }

    /// Swaps every staged process in for its original (if any), then
    /// applies the network side effects: listeners are (re-)registered
    /// and repaired connections re-established.
    ///
    /// # Errors
    ///
    /// Fails if a pid slot cannot be swapped; every process swapped so
    /// far is rolled back first, so the kernel is left exactly as it was
    /// before the call.
    pub fn commit(self, kernel: &mut Kernel) -> Result<CommittedRestore, CriuError> {
        let mut originals: Vec<(Pid, Option<Process>)> = Vec::with_capacity(self.staged.len());
        let mut restored: Vec<Pid> = Vec::with_capacity(self.staged.len());
        for staged in &self.staged {
            let pid = staged.proc.pid;
            let injected = dynacut_vm::fault::hit(dynacut_vm::fault::FaultPhase::RestoreCommit);
            let original = kernel.remove_process(pid).ok();
            let result = if injected {
                Err(CriuError::FaultInjected(
                    dynacut_vm::fault::FaultPhase::RestoreCommit,
                ))
            } else {
                // A restored process must start with a cold block cache:
                // its text was rebuilt from images that may carry planted
                // trap bytes, wiped blocks, or re-enabled code, and no
                // block decoded before the swap may survive it. This is
                // THE flush choke point for image swaps (DESIGN §11) —
                // callers that can prove more (the customize commit)
                // re-carry the displaced original's cache afterwards via
                // `CommittedRestore::carry_block_caches`.
                let mut replacement = staged.proc.clone();
                replacement.block_cache.flush();
                kernel.insert_process(replacement).map_err(CriuError::from)
            };
            match result {
                Ok(()) => {
                    kernel.record_flight(Some(pid), dynacut_vm::EventKind::ProcessRestored);
                    originals.push((pid, original));
                    restored.push(pid);
                }
                Err(err) => {
                    // Roll back: this process's original, then every
                    // earlier swap, newest first.
                    if let Some(proc) = original {
                        let _ = kernel.insert_process(proc);
                    }
                    for (pid, original) in originals.into_iter().rev() {
                        let _ = kernel.remove_process(pid);
                        if let Some(proc) = original {
                            let _ = kernel.insert_process(proc);
                        }
                    }
                    return Err(err);
                }
            }
        }

        // Network side effects only after every process is in place.
        let mut new_listeners = Vec::new();
        for staged in &self.staged {
            for &port in &staged.listeners {
                if !kernel.is_listening(port) {
                    new_listeners.push(port);
                }
                kernel.restore_listener(port);
            }
            kernel.unrepair_connections(&staged.conns);
        }

        Ok(CommittedRestore {
            originals,
            restored,
            new_listeners,
        })
    }
}

/// Restores a process from its image set into the kernel under its
/// original pid.
///
/// A thin wrapper over [`build_process`] + a single-process commit; see
/// [`RestoreTransaction`] for the multi-process all-or-nothing variant.
///
/// # Errors
///
/// Fails if the pid is taken, a module is missing from the registry, or
/// the images are inconsistent.
pub fn restore(
    kernel: &mut Kernel,
    image: &ProcessImage,
    registry: &ModuleRegistry,
) -> Result<Pid, CriuError> {
    let staged = build_process(kernel, image, registry)?;
    let pid = staged.proc.pid;
    kernel.insert_process(staged.proc)?;
    for port in staged.listeners {
        kernel.restore_listener(port);
    }
    kernel.unrepair_connections(&staged.conns);
    Ok(pid)
}

/// Restores every process of a checkpoint, transactionally: either every
/// process is restored or the kernel is left untouched (see
/// [`RestoreTransaction`]).
///
/// # Errors
///
/// Fails if any process cannot be built or committed.
pub fn restore_many(
    kernel: &mut Kernel,
    checkpoint: &CheckpointImage,
    registry: &ModuleRegistry,
) -> Result<Vec<Pid>, CriuError> {
    let txn = RestoreTransaction::prepare(kernel, checkpoint, registry)?;
    let committed = txn.commit(kernel)?;
    Ok(committed.pids().to_vec())
}

/// Restores from an incremental chain: materializes `parent` plus each
/// delta of `deltas` in order, then restores every process of the result.
/// The restored state is bit-identical to restoring the full dump the
/// chain stands in for.
///
/// # Errors
///
/// Fails if the chain does not apply (see
/// [`materialize_chain`](crate::materialize_chain)) or any process cannot
/// be restored.
pub fn restore_chain<'a>(
    kernel: &mut Kernel,
    parent: &CheckpointImage,
    deltas: impl IntoIterator<Item = &'a crate::DeltaImage>,
    registry: &ModuleRegistry,
) -> Result<Vec<Pid>, CriuError> {
    let materialized = crate::materialize_chain(parent, deltas)?;
    restore_many(kernel, &materialized, registry)
}
