//! Restoring a process from (possibly rewritten) images.

use crate::images::*;
use crate::CriuError;
use dynacut_obj::{materialize, Image, PAGE_SIZE};
use dynacut_vm::{
    CpuState, FdTable, FileDesc, Flags, Kernel, LoadedModule, Pid, Process, VfsFile,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Maps module names to their binaries, the restore-time analogue of the
/// filesystem CRIU reads file-backed mappings from.
#[derive(Debug, Clone, Default)]
pub struct ModuleRegistry {
    modules: BTreeMap<String, Arc<Image>>,
}

impl ModuleRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a binary under its image name.
    pub fn insert(&mut self, image: Arc<Image>) {
        self.modules.insert(image.name.clone(), image);
    }

    /// Looks up a binary by name.
    pub fn get(&self, name: &str) -> Option<&Arc<Image>> {
        self.modules.get(name)
    }

    /// Builds a registry from a process's loaded modules.
    pub fn from_modules<'a>(modules: impl IntoIterator<Item = &'a LoadedModule>) -> Self {
        let mut registry = ModuleRegistry::new();
        for module in modules {
            registry.insert(Arc::clone(&module.image));
        }
        registry
    }
}

/// Restores a process from its image set into the kernel under its
/// original pid.
///
/// Pages recorded in the pagemap are written verbatim (so image edits take
/// effect). Executable VMAs with **no** dumped pages are reconstructed
/// from the binary in `registry` — the stock-CRIU file-backed-page path
/// that silently discards text rewrites (see
/// [`DumpOptions`](crate::DumpOptions)).
///
/// # Errors
///
/// Fails if the pid is taken, a module is missing from the registry, or
/// the images are inconsistent.
pub fn restore(
    kernel: &mut Kernel,
    image: &ProcessImage,
    registry: &ModuleRegistry,
) -> Result<Pid, CriuError> {
    let pid = image.core.pid;
    let mut proc = Process::new(pid, &image.core.name);
    proc.parent = image.core.parent;

    // 1. VMAs.
    for vma in &image.mm.vmas {
        proc.mem
            .map(vma.start, vma.end - vma.start, vma.perms, &vma.name)?;
    }

    // 2. Re-attach modules from the registry (also used to rebuild
    //    file-backed text where pages were not dumped).
    let mut modules = Vec::with_capacity(image.core.modules.len());
    for module_ref in &image.core.modules {
        let binary = registry
            .get(&module_ref.name)
            .ok_or_else(|| CriuError::UnknownModule(module_ref.name.clone()))?;
        modules.push(LoadedModule {
            image: Arc::clone(binary),
            base: module_ref.base,
        });
    }

    // 3. File-backed reconstruction for text not present in the pagemap
    //    (stock-CRIU behaviour).
    let dumped: std::collections::BTreeSet<u64> = image.pagemap.pages.iter().copied().collect();
    let globals: BTreeMap<&str, u64> = modules
        .iter()
        .flat_map(|m| {
            m.image
                .symbols
                .iter()
                .map(move |(name, def)| (name.as_str(), m.base + def.offset))
        })
        .collect();
    for module in &modules {
        let segments = materialize(&module.image, module.base, |symbol| {
            globals.get(symbol).copied()
        })
        .map_err(|err| CriuError::Inconsistent(err.to_string()))?;
        for segment in &segments {
            if !segment.perms.exec {
                continue; // only text is file-backed in our model
            }
            let mut offset = 0usize;
            while offset < segment.bytes.len() {
                let page_base = segment.vaddr + offset as u64;
                let chunk = ((PAGE_SIZE as usize).min(segment.bytes.len() - offset)).max(1);
                // With stock CRIU options the page-fault handler always
                // reconstructs file-backed text from the binary; dumped
                // copies of text pages (if any) are irrelevant.
                if !image.exec_pages_dumped || !dumped.contains(&page_base) {
                    proc.mem
                        .write_unchecked(page_base, &segment.bytes[offset..offset + chunk]);
                }
                offset += PAGE_SIZE as usize;
            }
        }
    }
    proc.modules = modules;

    // 4. Dumped pages, verbatim.
    if image.pages.bytes.len() != image.pagemap.pages.len() * PAGE_SIZE as usize {
        return Err(CriuError::Inconsistent(format!(
            "pages.img holds {} bytes but pagemap lists {} pages",
            image.pages.bytes.len(),
            image.pagemap.pages.len()
        )));
    }
    for (index, &page_base) in image.pagemap.pages.iter().enumerate() {
        if !image.exec_pages_dumped {
            let exec = image.mm.vma_at(page_base).map(|v| v.perms.exec).unwrap_or(false);
            if exec {
                continue; // stock CRIU: text always comes from the binary
            }
        }
        let start = index * PAGE_SIZE as usize;
        proc.mem
            .write_unchecked(page_base, &image.pages.bytes[start..start + PAGE_SIZE as usize]);
    }

    // 5. Registers and signal state.
    proc.cpu = CpuState {
        regs: image.core.regs,
        pc: image.core.pc,
        flags: Flags::from_bits(image.core.flags_bits),
    };
    proc.sigactions = image.core.sigactions;
    proc.signal_depth = image.core.signal_depth;
    proc.insns_retired = image.core.insns_retired;
    proc.syscall_filter = image.core.syscall_filter;

    // 6. Descriptors (listeners re-registered, connections re-attached).
    let mut fds = FdTable::new();
    let mut conn_ids = Vec::new();
    for (fd, entry) in &image.files.fds {
        let desc = match entry {
            FdImage::Console => FileDesc::Console,
            FdImage::File { path, pos } => FileDesc::File {
                file: VfsFile {
                    path: path.clone(),
                    contents: kernel.vfs_contents(path).unwrap_or_default(),
                },
                pos: *pos,
            },
            FdImage::Socket => FileDesc::Socket,
            FdImage::Listener { port } => {
                kernel.restore_listener(*port);
                FileDesc::Listener { port: *port }
            }
            FdImage::Conn { id } => {
                conn_ids.push(*id);
                FileDesc::Conn(*id)
            }
        };
        fds.insert(*fd, desc);
    }
    proc.fds = fds;

    // 7. Leave TCP repair mode.
    kernel.unrepair_connections(&conn_ids);

    kernel.insert_process(proc)?;
    Ok(pid)
}

/// Restores every process of a checkpoint.
///
/// # Errors
///
/// Fails on the first process that cannot be restored.
pub fn restore_many(
    kernel: &mut Kernel,
    checkpoint: &CheckpointImage,
    registry: &ModuleRegistry,
) -> Result<Vec<Pid>, CriuError> {
    checkpoint
        .procs
        .iter()
        .map(|image| restore(kernel, image, registry))
        .collect()
}

/// Restores from an incremental chain: materializes `parent` plus each
/// delta of `deltas` in order, then restores every process of the result.
/// The restored state is bit-identical to restoring the full dump the
/// chain stands in for.
///
/// # Errors
///
/// Fails if the chain does not apply (see
/// [`materialize_chain`](crate::materialize_chain)) or any process cannot
/// be restored.
pub fn restore_chain<'a>(
    kernel: &mut Kernel,
    parent: &CheckpointImage,
    deltas: impl IntoIterator<Item = &'a crate::DeltaImage>,
    registry: &ModuleRegistry,
) -> Result<Vec<Pid>, CriuError> {
    let materialized = crate::materialize_chain(parent, deltas)?;
    restore_many(kernel, &materialized, registry)
}
