//! The checkpoint image types — one struct per CRIU image file.

use dynacut_obj::{Perms, PAGE_SIZE};
use dynacut_vm::{ConnId, Pid, SigAction, Signal};

/// A module mapped in the checkpointed process: name + base address.
///
/// Restore re-creates file-backed text from the named binary when the
/// checkpoint was taken without [`DumpOptions::dump_exec_pages`]
/// (stock-CRIU behaviour), and the rewriter uses it to locate original
/// instruction bytes.
///
/// [`DumpOptions::dump_exec_pages`]: crate::DumpOptions::dump_exec_pages
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleRef {
    /// Module (binary) name, resolved through a
    /// [`ModuleRegistry`](crate::ModuleRegistry).
    pub name: String,
    /// Base address the module was loaded at.
    pub base: u64,
}

/// `core.img`: registers, signal state and process identity.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CoreImage {
    /// Process id at dump time (restore reuses it).
    pub pid: Pid,
    /// Parent pid, if any.
    pub parent: Option<Pid>,
    /// Executable name.
    pub name: String,
    /// General-purpose registers.
    pub regs: [u64; 16],
    /// Program counter.
    pub pc: u64,
    /// Packed comparison flags.
    pub flags_bits: u64,
    /// Signal dispositions (handler, restorer, mask) per signal number —
    /// the field DynaCut edits to install its fault handler (paper §3.3).
    pub sigactions: [SigAction; Signal::COUNT],
    /// Live signal-handler nesting depth.
    pub signal_depth: u32,
    /// Instructions retired before the dump.
    pub insns_retired: u64,
    /// Modules mapped into the process.
    pub modules: Vec<ModuleRef>,
    /// Syscall allow-bitmask (the seccomp analogue); all-ones permits
    /// everything. DynaCut edits this to install temporal syscall
    /// specialization (paper §5, after Ghavamnia et al.).
    pub syscall_filter: u64,
}

/// One VMA entry of `mm.img`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VmaImage {
    /// Start address.
    pub start: u64,
    /// End address (exclusive).
    pub end: u64,
    /// Protection flags.
    pub perms: Perms,
    /// Mapping name.
    pub name: String,
}

/// `mm.img`: the full VMA list ("a collection of all the VMA regions of
/// the application", paper §3.3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct MmImage {
    /// VMAs in address order.
    pub vmas: Vec<VmaImage>,
}

impl MmImage {
    /// The VMA containing `addr`, if any.
    pub fn vma_at(&self, addr: u64) -> Option<&VmaImage> {
        self.vmas.iter().find(|v| addr >= v.start && addr < v.end)
    }

    /// Finds `len` bytes of unmapped, page-aligned space at or above
    /// `hint`.
    pub fn find_free(&self, hint: u64, len: u64) -> u64 {
        let len = len.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut candidate = hint.div_ceil(PAGE_SIZE) * PAGE_SIZE;
        loop {
            match self
                .vmas
                .iter()
                .find(|v| v.start < candidate + len && candidate < v.end)
            {
                None => return candidate,
                Some(vma) => candidate = vma.end,
            }
        }
    }
}

/// `pagemap.img`: which pages are populated with data ("information about
/// which virtual memory regions are populated", paper §3.3).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PagemapImage {
    /// Populated page base addresses, sorted ascending.
    pub pages: Vec<u64>,
}

/// `pages.img`: raw page contents, one [`PAGE_SIZE`] record per
/// [`PagemapImage`] entry, in the same order.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PagesImage {
    /// Concatenated page bytes.
    pub bytes: Vec<u8>,
}

/// One file-descriptor entry of `files.img`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdImage {
    /// The console.
    Console,
    /// An open VFS file and its cursor.
    File {
        /// File path.
        path: String,
        /// Read offset.
        pos: u64,
    },
    /// An unbound socket.
    Socket,
    /// A bound/listening socket.
    Listener {
        /// Bound port.
        port: u16,
    },
    /// An established connection (re-attached on restore via TCP repair).
    Conn {
        /// Kernel connection id.
        id: ConnId,
    },
}

/// `files.img`: the descriptor table.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FilesImage {
    /// `(fd, entry)` pairs in fd order.
    pub fds: Vec<(u32, FdImage)>,
}

/// One repaired TCP connection in `tcp.img`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpConnImage {
    /// Kernel connection id.
    pub id: ConnId,
    /// Server port.
    pub port: u16,
    /// Unread client→server bytes at dump time.
    pub to_server: Vec<u8>,
    /// Unsent server→client bytes at dump time.
    pub to_client: Vec<u8>,
}

/// `tcp.img`: established connections saved in repair mode.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TcpImage {
    /// Connection snapshots.
    pub conns: Vec<TcpConnImage>,
}

/// The complete image set for one process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProcessImage {
    /// Registers and signal state.
    pub core: CoreImage,
    /// VMA list.
    pub mm: MmImage,
    /// Populated-page index.
    pub pagemap: PagemapImage,
    /// Raw page bytes.
    pub pages: PagesImage,
    /// Descriptor table.
    pub files: FilesImage,
    /// TCP connections.
    pub tcp: TcpImage,
    /// Whether executable (file-backed text) pages were dumped. When
    /// `false` (stock CRIU), restore reconstructs all text from the binary
    /// and image-level text edits are silently lost — the precise failure
    /// mode DynaCut's criu/mem.c patch exists to avoid (paper §3.3).
    pub exec_pages_dumped: bool,
}

/// A checkpoint of one or more processes (Nginx dumps master + worker,
/// paper §4.1) plus the kernel clock.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CheckpointImage {
    /// Per-process images, in pid order.
    pub procs: Vec<ProcessImage>,
    /// Kernel time at dump.
    pub time_ns: u64,
}

impl CheckpointImage {
    /// Total size of all page payloads, in bytes (the dominant term of the
    /// paper's reported "image size").
    pub fn pages_bytes(&self) -> usize {
        self.procs.iter().map(|p| p.pages.bytes.len()).sum()
    }

    /// The image for `pid`, if present.
    pub fn proc_image(&self, pid: Pid) -> Option<&ProcessImage> {
        self.procs.iter().find(|p| p.core.pid == pid)
    }

    /// Mutable access to the image for `pid`.
    pub fn proc_image_mut(&mut self, pid: Pid) -> Option<&mut ProcessImage> {
        self.procs.iter_mut().find(|p| p.core.pid == pid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm_find_free_skips_vmas() {
        let mm = MmImage {
            vmas: vec![
                VmaImage {
                    start: 0x1000,
                    end: 0x3000,
                    perms: Perms::RW,
                    name: "a".into(),
                },
                VmaImage {
                    start: 0x4000,
                    end: 0x5000,
                    perms: Perms::R,
                    name: "b".into(),
                },
            ],
        };
        assert_eq!(mm.find_free(0x1000, PAGE_SIZE), 0x3000);
        assert_eq!(mm.find_free(0x1000, 2 * PAGE_SIZE), 0x5000);
        assert_eq!(mm.vma_at(0x2000).unwrap().name, "a");
        assert!(mm.vma_at(0x3000).is_none());
    }
}
