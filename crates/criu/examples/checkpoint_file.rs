//! Dumps a small live guest to a serialized checkpoint file, suitable for
//! inspection with the `crit` CLI:
//!
//! ```text
//! cargo run -p dynacut-criu --example checkpoint_file -- /tmp/guest.ckpt
//! cargo run -p dynacut-criu --bin crit -- info /tmp/guest.ckpt
//! ```

use dynacut_criu::{dump_many, DumpOptions};
use dynacut_isa::{Assembler, Insn, Reg, Width};
use dynacut_obj::{ModuleBuilder, ObjectKind, PAGE_SIZE};
use dynacut_vm::{Kernel, LoadSpec, Sysno};

fn main() {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "guest.ckpt".to_owned());

    // A guest that touches its scratch page, announces readiness, and
    // spins — enough state for core/mm/pagemap/pages to be non-trivial.
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.lea_ext(Reg::R1, "scratch", 0);
    asm.push(Insn::Movi(Reg::R2, 0x5EED));
    asm.push(Insn::St(Width::B8, Reg::R1, 0, Reg::R2));
    asm.push(Insn::Movi(Reg::R0, Sysno::EmitEvent as u64));
    asm.push(Insn::Movi(Reg::R1, 1));
    asm.push(Insn::Syscall);
    asm.label("spin");
    asm.jmp("spin");

    let mut builder = ModuleBuilder::new("ckpt_guest", ObjectKind::Executable);
    builder.text(asm.finish().expect("assemble"));
    builder.bss("scratch", PAGE_SIZE);
    builder.entry("_start");
    let exe = builder.link(&[]).expect("link");

    let mut kernel = Kernel::new();
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).expect("spawn");
    kernel.run_until_event(1, 1_000_000).expect("guest up");
    kernel.freeze(pid).expect("freeze");
    let checkpoint =
        dump_many(&mut kernel, &[pid], &DumpOptions::default()).expect("dump");
    let bytes = checkpoint.to_bytes();
    std::fs::write(&path, &bytes).expect("write checkpoint");
    println!(
        "wrote {path}: {} bytes, {} process(es), {} page bytes",
        bytes.len(),
        checkpoint.procs.len(),
        checkpoint.pages_bytes()
    );
}
