//! # dynacut-analysis — coverage graphs and `tracediff`
//!
//! Reproduces the paper's undesired-code identification (§3.1): coverage
//! graphs built from execution traces, and the set algebra of
//! `tracediff.py`:
//!
//! * feature blocks: `blk ∈ CovG_undesired ∧ blk ∉ CovG_wanted`
//!   ([`feature_blocks`]),
//! * initialization-only blocks: `blk ∈ CovG_init ∧ blk ∉ CovG_serving`
//!   ([`init_only_blocks`]),
//! * library filtering ("narrows down the undesired code blocks by
//!   filtering out basic blocks that appear in program libraries",
//!   [`CovGraph::retain_modules`]), and
//! * PLT-entry usage analysis for the ret2plt/BROP attack-surface study
//!   (§4.2, [`plt_usage`]).

mod annotate;
mod cov;
mod plt;

pub use annotate::{annotate_functions, tracediff_report, FunctionCoverage};
pub use cov::{feature_blocks, init_only_blocks, BlockKey, CovGraph};
pub use plt::{plt_usage, PltUsage};
