//! PLT-entry usage analysis for the attack-surface study (paper §4.2:
//! "DynaCut removes 43 out of 56 executed PLT entries in Nginx after the
//! initialization phase is completed").

use crate::cov::{BlockKey, CovGraph};
use dynacut_obj::Image;

/// The classification of a module's PLT entries across execution phases.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PltUsage {
    /// PLT entries executed at least once (any phase).
    pub executed: Vec<String>,
    /// Executed entries needed only during initialization — removable
    /// post-init (fork(), open(), … in a typical server).
    pub removable_post_init: Vec<String>,
    /// Executed entries still used while serving — must stay.
    pub still_needed: Vec<String>,
}

impl PltUsage {
    /// The headline ratio the paper reports, e.g. Nginx "43 out of 56".
    pub fn removable_ratio(&self) -> (usize, usize) {
        (self.removable_post_init.len(), self.executed.len())
    }
}

/// Classifies the PLT entries of `image` (loaded under `module_name`)
/// given the initialization-phase and serving-phase coverage graphs.
pub fn plt_usage(
    image: &Image,
    module_name: &str,
    init: &CovGraph,
    serving: &CovGraph,
) -> PltUsage {
    let mut usage = PltUsage::default();
    for entry in &image.plt {
        let Some(stub) = image.block_containing(entry.stub_offset) else {
            continue;
        };
        let key = BlockKey {
            module: module_name.to_owned(),
            offset: stub.addr,
            size: stub.size,
        };
        let in_init = init.contains(&key);
        let in_serving = serving.contains(&key);
        if !in_init && !in_serving {
            continue;
        }
        usage.executed.push(entry.name.clone());
        if in_serving {
            usage.still_needed.push(entry.name.clone());
        } else {
            usage.removable_post_init.push(entry.name.clone());
        }
    }
    usage
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynacut_isa::{Assembler, Insn};
    use dynacut_obj::{ModuleBuilder, ObjectKind};

    fn libc() -> Image {
        let mut asm = Assembler::new();
        for name in ["libc_fork", "libc_write", "libc_socket"] {
            asm.func(name);
            asm.push(Insn::Ret);
        }
        let mut builder = ModuleBuilder::new("libc", ObjectKind::SharedLib);
        builder.text(asm.finish().unwrap());
        builder.link(&[]).unwrap()
    }

    fn app(libc: &Image) -> Image {
        let mut asm = Assembler::new();
        asm.func("_start");
        asm.call_ext("libc_fork");
        asm.call_ext("libc_socket");
        asm.call_ext("libc_write");
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("app", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.entry("_start");
        builder.link(&[libc]).unwrap()
    }

    #[test]
    fn classifies_init_only_and_serving_plt_entries() {
        let libc = libc();
        let image = app(&libc);
        let stub_key = |name: &str| {
            let entry = image.plt_entry(name).unwrap();
            let stub = image.block_containing(entry.stub_offset).unwrap();
            BlockKey {
                module: "app".into(),
                offset: stub.addr,
                size: stub.size,
            }
        };
        // fork + socket executed during init; write during both; nothing
        // executed libc_socket during serving.
        let mut init = CovGraph::new();
        init.insert(stub_key("libc_fork"));
        init.insert(stub_key("libc_socket"));
        init.insert(stub_key("libc_write"));
        let mut serving = CovGraph::new();
        serving.insert(stub_key("libc_write"));

        let usage = plt_usage(&image, "app", &init, &serving);
        assert_eq!(usage.executed.len(), 3);
        assert_eq!(
            usage.removable_post_init,
            vec!["libc_fork".to_owned(), "libc_socket".to_owned()]
        );
        assert_eq!(usage.still_needed, vec!["libc_write".to_owned()]);
        assert_eq!(usage.removable_ratio(), (2, 3));
    }

    #[test]
    fn unexecuted_entries_are_not_counted() {
        let libc = libc();
        let image = app(&libc);
        let usage = plt_usage(&image, "app", &CovGraph::new(), &CovGraph::new());
        assert!(usage.executed.is_empty());
        assert_eq!(usage.removable_ratio(), (0, 0));
    }
}
