//! Coverage graphs and the tracediff set algebra.

use dynacut_trace::TraceLog;
use std::collections::BTreeSet;

/// A basic block identified by module **name** and module-relative
/// offset/size — stable across load addresses and process restarts.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BlockKey {
    /// Module (binary) name.
    pub module: String,
    /// Offset of the block inside the module.
    pub offset: u64,
    /// Block size in bytes.
    pub size: u32,
}

impl std::fmt::Display for BlockKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}+{:#x}({}B)", self.module, self.offset, self.size)
    }
}

/// A code coverage graph: the set of executed basic blocks
/// (`CovG` in the paper's notation).
///
/// ```
/// use dynacut_analysis::{feature_blocks, BlockKey, CovGraph};
///
/// let key = |offset| BlockKey { module: "app".into(), offset, size: 4 };
/// let undesired: CovGraph = [key(0), key(8)].into_iter().collect();
/// let wanted: CovGraph = [key(8)].into_iter().collect();
/// let feature = feature_blocks(&undesired, &wanted);
/// assert_eq!(feature.len(), 1);
/// assert!(feature.contains(&key(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CovGraph {
    blocks: BTreeSet<BlockKey>,
}

impl CovGraph {
    /// An empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a graph from a drcov trace log.
    pub fn from_log(log: &TraceLog) -> Self {
        let mut graph = CovGraph::new();
        for block in &log.blocks {
            let module = log
                .modules
                .iter()
                .find(|m| m.id == block.module)
                .map(|m| m.name.clone())
                .unwrap_or_else(|| format!("module#{}", block.module));
            graph.blocks.insert(BlockKey {
                module,
                offset: u64::from(block.offset),
                size: block.size,
            });
        }
        graph
    }

    /// Inserts one block.
    pub fn insert(&mut self, key: BlockKey) {
        self.blocks.insert(key);
    }

    /// Whether the block is in the graph.
    pub fn contains(&self, key: &BlockKey) -> bool {
        self.blocks.contains(key)
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Whether the graph has no blocks.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterates over the blocks in order.
    pub fn iter(&self) -> impl Iterator<Item = &BlockKey> {
        self.blocks.iter()
    }

    /// Total covered bytes.
    pub fn covered_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.size)).sum()
    }

    /// Set union, the merge of multiple trace files (paper: "either use a
    /// single trace file containing all the desired requests or merge
    /// multiple trace files").
    pub fn union(&self, other: &CovGraph) -> CovGraph {
        CovGraph {
            blocks: self.blocks.union(&other.blocks).cloned().collect(),
        }
    }

    /// Set difference `self \ other`.
    pub fn difference(&self, other: &CovGraph) -> CovGraph {
        CovGraph {
            blocks: self.blocks.difference(&other.blocks).cloned().collect(),
        }
    }

    /// Set intersection.
    pub fn intersection(&self, other: &CovGraph) -> CovGraph {
        CovGraph {
            blocks: self.blocks.intersection(&other.blocks).cloned().collect(),
        }
    }

    /// Keeps only blocks of the named modules — the paper's filtering of
    /// library blocks so customization targets the application binary.
    pub fn retain_modules(&self, modules: &[&str]) -> CovGraph {
        CovGraph {
            blocks: self
                .blocks
                .iter()
                .filter(|b| modules.contains(&b.module.as_str()))
                .cloned()
                .collect(),
        }
    }

    /// Blocks of one module as `(offset, size)` pairs.
    pub fn module_blocks(&self, module: &str) -> Vec<(u64, u32)> {
        self.blocks
            .iter()
            .filter(|b| b.module == module)
            .map(|b| (b.offset, b.size))
            .collect()
    }
}

impl FromIterator<BlockKey> for CovGraph {
    fn from_iter<T: IntoIterator<Item = BlockKey>>(iter: T) -> Self {
        CovGraph {
            blocks: iter.into_iter().collect(),
        }
    }
}

impl Extend<BlockKey> for CovGraph {
    fn extend<T: IntoIterator<Item = BlockKey>>(&mut self, iter: T) {
        self.blocks.extend(iter);
    }
}

/// Feature-related undesired blocks: executed by the undesired inputs but
/// by none of the wanted inputs (`blk ∈ CovG_undesired ∧ blk ∉
/// CovG_wanted`, paper §3.1).
pub fn feature_blocks(undesired: &CovGraph, wanted: &CovGraph) -> CovGraph {
    undesired.difference(wanted)
}

/// Initialization-only blocks: executed during the init phase but never
/// afterwards (`blk ∈ CovG_init ∧ blk ∉ CovG_serving`, paper §3.1).
pub fn init_only_blocks(init: &CovGraph, serving: &CovGraph) -> CovGraph {
    init.difference(serving)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(module: &str, offset: u64) -> BlockKey {
        BlockKey {
            module: module.into(),
            offset,
            size: 4,
        }
    }

    fn graph(keys: &[BlockKey]) -> CovGraph {
        keys.iter().cloned().collect()
    }

    #[test]
    fn feature_blocks_is_strict_difference() {
        let undesired = graph(&[key("app", 0), key("app", 4), key("app", 8)]);
        let wanted = graph(&[key("app", 4)]);
        let features = feature_blocks(&undesired, &wanted);
        assert_eq!(features.len(), 2);
        assert!(features.contains(&key("app", 0)));
        assert!(!features.contains(&key("app", 4)));
    }

    #[test]
    fn init_only_blocks_excludes_shared_blocks() {
        // A block running in both phases is NOT initialization-only —
        // the paper's exact concern ("a basic block may execute during
        // the initialization phase, and may also execute later").
        let init = graph(&[key("app", 0), key("app", 4)]);
        let serving = graph(&[key("app", 4), key("app", 8)]);
        let only = init_only_blocks(&init, &serving);
        assert_eq!(only.len(), 1);
        assert!(only.contains(&key("app", 0)));
    }

    #[test]
    fn union_is_commutative_associative_idempotent() {
        let a = graph(&[key("app", 0), key("app", 4)]);
        let b = graph(&[key("app", 4), key("lib", 0)]);
        let c = graph(&[key("lib", 8)]);
        assert_eq!(a.union(&b), b.union(&a));
        assert_eq!(a.union(&b).union(&c), a.union(&b.union(&c)));
        assert_eq!(a.union(&a), a);
    }

    #[test]
    fn retain_modules_filters_libraries() {
        let mixed = graph(&[key("app", 0), key("libc", 0), key("libc", 8)]);
        let app_only = mixed.retain_modules(&["app"]);
        assert_eq!(app_only.len(), 1);
        assert!(app_only.contains(&key("app", 0)));
    }

    #[test]
    fn difference_subset_properties() {
        let a = graph(&[key("app", 0), key("app", 4)]);
        let b = graph(&[key("app", 4)]);
        let d = a.difference(&b);
        // d ⊆ a and d ∩ b = ∅.
        for block in d.iter() {
            assert!(a.contains(block));
            assert!(!b.contains(block));
        }
    }

    #[test]
    fn covered_bytes_and_module_blocks() {
        let g = graph(&[key("app", 0), key("app", 16)]);
        assert_eq!(g.covered_bytes(), 8);
        assert_eq!(g.module_blocks("app"), vec![(0, 4), (16, 4)]);
        assert!(g.module_blocks("libc").is_empty());
    }
}
