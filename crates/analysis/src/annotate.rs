//! Function-level annotation of coverage graphs — the paper's Figure 4:
//! `tracediff.py` prints the discovered feature blocks with the functions
//! they belong to ("Feature-related code block locations in
//! Redis-server").

use crate::cov::CovGraph;
use dynacut_obj::Image;

/// Coverage of one function: how many of its blocks appear in a graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionCoverage {
    /// Function name.
    pub function: String,
    /// Module-relative entry offset.
    pub offset: u64,
    /// Blocks of this function present in the graph.
    pub covered_blocks: usize,
    /// Total blocks of the function.
    pub total_blocks: usize,
}

impl FunctionCoverage {
    /// Fraction of the function's blocks covered.
    pub fn fraction(&self) -> f64 {
        if self.total_blocks == 0 {
            return 0.0;
        }
        self.covered_blocks as f64 / self.total_blocks as f64
    }
}

/// Aggregates a coverage graph per function of `image` (loaded under
/// `module`), listing only functions with at least one covered block,
/// ordered by entry offset.
pub fn annotate_functions(graph: &CovGraph, image: &Image, module: &str) -> Vec<FunctionCoverage> {
    let mut out = Vec::new();
    for func in &image.functions {
        let blocks = image.blocks_of_function(&func.name);
        if blocks.is_empty() {
            continue;
        }
        let covered = blocks
            .iter()
            .filter(|block| {
                graph.contains(&crate::BlockKey {
                    module: module.to_owned(),
                    offset: block.addr,
                    size: block.size,
                })
            })
            .count();
        if covered > 0 {
            out.push(FunctionCoverage {
                function: func.name.clone(),
                offset: func.offset,
                covered_blocks: covered,
                total_blocks: blocks.len(),
            });
        }
    }
    out.sort_by_key(|fc| fc.offset);
    out
}

/// Renders a Figure-4-style report: each discovered block with its
/// address, size and containing function.
pub fn tracediff_report(graph: &CovGraph, image: &Image, module: &str) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "tracediff: {} undesired basic blocks in `{module}`",
        graph.module_blocks(module).len()
    );
    for (offset, size) in graph.module_blocks(module) {
        let location = image
            .function_containing(offset)
            .map(|f| {
                let delta = offset - f.offset;
                if delta == 0 {
                    f.name.clone()
                } else {
                    format!("{}+{delta:#x}", f.name)
                }
            })
            .unwrap_or_else(|| "<unknown>".to_owned());
        let _ = writeln!(out, "  {offset:#010x} {size:>4}B  {location}");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BlockKey;
    use dynacut_isa::{Assembler, Insn, Reg};
    use dynacut_obj::{ModuleBuilder, ObjectKind};

    fn two_func_image() -> Image {
        let mut asm = Assembler::new();
        asm.func("alpha");
        asm.push(Insn::Movi(Reg::R1, 1));
        asm.push(Insn::Ret);
        asm.label("alpha_tail");
        asm.push(Insn::Ret);
        asm.func("beta");
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("app", ObjectKind::SharedLib);
        builder.text(asm.finish().unwrap());
        builder.link(&[]).unwrap()
    }

    #[test]
    fn annotation_counts_per_function() {
        let image = two_func_image();
        let mut graph = CovGraph::new();
        // Cover alpha's first block only.
        let alpha_blocks = image.blocks_of_function("alpha");
        graph.insert(BlockKey {
            module: "app".into(),
            offset: alpha_blocks[0].addr,
            size: alpha_blocks[0].size,
        });
        let annotated = annotate_functions(&graph, &image, "app");
        assert_eq!(annotated.len(), 1);
        assert_eq!(annotated[0].function, "alpha");
        assert_eq!(annotated[0].covered_blocks, 1);
        assert_eq!(annotated[0].total_blocks, alpha_blocks.len());
        assert!(annotated[0].fraction() < 1.0);
    }

    #[test]
    fn report_names_containing_functions() {
        let image = two_func_image();
        let mut graph = CovGraph::new();
        let beta = image.blocks_of_function("beta")[0];
        graph.insert(BlockKey {
            module: "app".into(),
            offset: beta.addr,
            size: beta.size,
        });
        let report = tracediff_report(&graph, &image, "app");
        assert!(report.contains("beta"));
        assert!(report.contains("1 undesired basic blocks"));
    }

    #[test]
    fn report_handles_mid_function_blocks() {
        let image = two_func_image();
        let mut graph = CovGraph::new();
        // alpha's second block starts mid-function.
        let alpha_blocks = image.blocks_of_function("alpha");
        let tail = alpha_blocks.last().unwrap();
        graph.insert(BlockKey {
            module: "app".into(),
            offset: tail.addr,
            size: tail.size,
        });
        let report = tracediff_report(&graph, &image, "app");
        assert!(report.contains("alpha+0x"), "offset-annotated: {report}");
    }
}
