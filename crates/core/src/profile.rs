//! The profiling workflow: named coverage phases over a live kernel.
//!
//! Packages the paper's §3.1 protocol — run a workload per feature,
//! nudge between phases, diff the resulting coverage graphs — into one
//! object, so the operator workflow reads like the paper:
//!
//! ```text
//! boot → [init runs] → end_phase("init")
//!      → wanted workload → end_phase("wanted")
//!      → undesired workload → end_phase("undesired")
//!      → feature_between("undesired", "wanted", …) → customize
//! ```

use crate::Feature;
use dynacut_analysis::{feature_blocks, init_only_blocks, CovGraph};
use dynacut_trace::Tracer;
use dynacut_vm::{Kernel, Pid};
use std::collections::BTreeMap;

/// A phase-oriented coverage profiler wrapping the drcov tracer.
#[derive(Debug, Clone)]
pub struct Profiler {
    tracer: Tracer,
    phases: BTreeMap<String, CovGraph>,
}

impl Profiler {
    /// Installs the tracer hook into the kernel and returns the profiler.
    /// Call before spawning the processes you want profiled.
    pub fn install(kernel: &mut Kernel) -> Self {
        Profiler {
            tracer: Tracer::install(kernel),
            phases: BTreeMap::new(),
        }
    }

    /// Starts tracking a process's modules (call again after `fork`s for
    /// the children).
    ///
    /// # Errors
    ///
    /// Fails if the process does not exist or a module does not fit the
    /// drcov field widths (see [`dynacut_trace::TraceError`]).
    pub fn track(&self, kernel: &Kernel, pid: Pid) -> Result<(), crate::DynacutError> {
        self.tracer.track(kernel, pid)?;
        Ok(())
    }

    /// Ends the current phase: the coverage collected since the previous
    /// phase boundary is stored under `name` and the cache is cleared
    /// (the nudge protocol).
    pub fn end_phase(&mut self, name: &str) -> &CovGraph {
        let graph = CovGraph::from_log(&self.tracer.nudge());
        self.phases.insert(name.to_owned(), graph);
        &self.phases[name]
    }

    /// Stores the coverage collected so far under `name` **without**
    /// clearing (an open-ended serving phase).
    pub fn snapshot_phase(&mut self, name: &str) -> &CovGraph {
        let graph = CovGraph::from_log(&self.tracer.snapshot());
        self.phases.insert(name.to_owned(), graph);
        &self.phases[name]
    }

    /// A recorded phase's coverage.
    pub fn phase(&self, name: &str) -> Option<&CovGraph> {
        self.phases.get(name)
    }

    /// Builds a feature from the tracediff of two recorded phases:
    /// `blk ∈ phase(undesired) ∧ blk ∉ phase(wanted)`, restricted to
    /// `module` (library blocks filtered out, as `tracediff.py` does).
    ///
    /// Returns `None` if either phase is missing or the diff is empty.
    pub fn feature_between(
        &self,
        name: &str,
        undesired_phase: &str,
        wanted_phase: &str,
        module: &str,
    ) -> Option<Feature> {
        let undesired = self.phases.get(undesired_phase)?;
        let wanted = self.phases.get(wanted_phase)?;
        let diff = feature_blocks(undesired, wanted).retain_modules(&[module]);
        if diff.is_empty() {
            return None;
        }
        Some(Feature::from_cov_graph(name, module, &diff))
    }

    /// The initialization-only blocks between two phases
    /// (`init_phase \ serving_phase`), restricted to `module`.
    pub fn init_only_between(
        &self,
        init_phase: &str,
        serving_phase: &str,
        module: &str,
    ) -> Option<CovGraph> {
        let init = self.phases.get(init_phase)?;
        let serving = self.phases.get(serving_phase)?;
        Some(init_only_blocks(init, serving).retain_modules(&[module]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynacut_analysis::BlockKey;

    #[test]
    fn missing_phases_yield_none() {
        let mut kernel = Kernel::new();
        let profiler = Profiler::install(&mut kernel);
        assert!(profiler.phase("nope").is_none());
        assert!(profiler
            .feature_between("f", "a", "b", "app")
            .is_none());
        assert!(profiler.init_only_between("a", "b", "app").is_none());
    }

    #[test]
    fn empty_diff_yields_no_feature() {
        let mut kernel = Kernel::new();
        let mut profiler = Profiler::install(&mut kernel);
        profiler.end_phase("a");
        profiler.end_phase("b");
        assert!(profiler.feature_between("f", "a", "b", "app").is_none());
    }

    #[test]
    fn phases_are_recorded_and_retrievable() {
        let mut kernel = Kernel::new();
        let mut profiler = Profiler::install(&mut kernel);
        profiler.end_phase("init");
        assert!(profiler.phase("init").is_some());
        assert!(profiler.phase("init").unwrap().is_empty());
        let _ = BlockKey {
            module: "app".into(),
            offset: 0,
            size: 1,
        };
    }
}
