//! The DynaCut orchestrator: freeze → dump → rewrite → inject → restore.

use crate::handler::{build_fault_handler, build_verifier_library, VERIFIER_EVENT_BIT};
use crate::original::OriginalText;
use crate::plan::{FaultPolicy, RewritePlan};
use crate::rewrite::{disable_in_image, enable_in_image, remove_blocks_in_image};
use crate::DynacutError;
use dynacut_criu::{
    dump_many, mark_clean_after_dump, pre_dump, CheckpointImage, CheckpointStore, CkptId,
    DeltaImage, DumpOptions, ModuleRegistry, RestoreTransaction,
};
use dynacut_vm::fault::{self, FaultPhase};
use dynacut_vm::{EventKind, Kernel, Phase, Pid, RollbackStep, SigAction, Signal};
use std::time::{Duration, Instant};

/// Wall-clock timing breakdown of one customization, matching the legend
/// of the paper's Figure 6 (checkpoint / disable code w/ int3 / insert
/// sighandler / restore).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timings {
    /// Freezing and dumping the process(es), including serialising the
    /// images to the in-memory tmpfs store.
    pub checkpoint: Duration,
    /// Editing the images: trap bytes, wipes, unmaps, restores.
    pub disable_code: Duration,
    /// Building and injecting the fault-handler/verifier library and
    /// patching the sigaction.
    pub insert_sighandler: Duration,
    /// Restoring the process(es).
    pub restore: Duration,
}

impl Timings {
    /// Total service-interruption time.
    pub fn total(&self) -> Duration {
        self.checkpoint + self.disable_code + self.insert_sighandler + self.restore
    }
}

/// What a customization did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CustomizeReport {
    /// Timing breakdown.
    pub timings: Timings,
    /// Distinct basic blocks disabled or removed.
    pub blocks_disabled: usize,
    /// `int3` bytes written.
    pub bytes_written: u64,
    /// Whole pages unmapped.
    pub pages_unmapped: u64,
    /// Blocks re-enabled.
    pub blocks_enabled: usize,
    /// Serialized checkpoint size in bytes (the tmpfs image footprint).
    pub image_bytes: usize,
    /// Base address the handler library was injected at, per process.
    pub handler_bases: Vec<(Pid, u64)>,
    /// Page bytes copied while the processes were frozen. Without
    /// incremental mode this is the whole page payload; with
    /// [`DynaCut::with_incremental`] the pre-dump moves clean pages
    /// before the freeze and only the dirty residue lands here.
    pub frozen_page_bytes: usize,
    /// Page bytes the pre-dump copied while the guest was still running
    /// (zero without incremental mode).
    pub prewritten_page_bytes: usize,
    /// Page bytes the checkpoint occupies in the store: the delta payload
    /// when a parent baseline existed, the full payload otherwise. `None`
    /// without incremental mode (nothing is stored).
    pub stored_page_bytes: Option<usize>,
    /// Id of the stored checkpoint (incremental mode only).
    pub checkpoint_id: Option<CkptId>,
    /// Fine-grained per-phase durations, in execution order — the same
    /// phases the flight recorder journals ([`Phase`]). Sums to the
    /// cycle's wall-clock cost by construction; the coarse [`Timings`]
    /// buckets above group these into the paper's Figure 6 legend.
    pub phases: Vec<(Phase, Duration)>,
}

/// Journals a phase start in the flight recorder and returns the
/// wall-clock anchor its matching [`end_phase`] measures from. A
/// `PhaseStart` with no `PhaseEnd` in the journal marks the phase a
/// failed cycle died in.
fn start_phase(kernel: &mut Kernel, phase: Phase) -> Instant {
    kernel.record_flight(None, EventKind::PhaseStart { phase });
    Instant::now()
}

/// Journals a successful phase end and appends its duration to the
/// report's per-phase breakdown.
fn end_phase(kernel: &mut Kernel, report: &mut CustomizeReport, phase: Phase, started: Instant) {
    let elapsed = started.elapsed();
    kernel.record_flight(
        None,
        EventKind::PhaseEnd {
            phase,
            duration_ns: elapsed.as_nanos() as u64,
        },
    );
    report.phases.push((phase, elapsed));
}

/// Pre-customization state one `customize` attempt must restore on
/// failure (DESIGN §5): which pids it froze, the dirty-page bits the
/// pre-dump swept, and the incremental baseline it displaced.
struct TxnJournal {
    frozen: Vec<Pid>,
    saved_dirty: Vec<(Pid, Vec<u64>)>,
    last_baseline: Option<(CkptId, CheckpointImage)>,
}

/// The DynaCut framework handle: a module registry (the "binaries on
/// disk") plus dump options.
#[derive(Debug, Clone)]
pub struct DynaCut {
    registry: ModuleRegistry,
    dump_options: DumpOptions,
    /// Incremental checkpointing: pre-dump clean pages while the guest
    /// runs and store dirty-page deltas against the previous baseline.
    incremental: bool,
    /// Delta-chain checkpoint store (incremental mode only).
    store: CheckpointStore,
    /// The checkpoint the current dirty bitmap is clean against: the
    /// edited image restored by the previous customization. Cleared when
    /// a failed cycle leaves the bitmap swept without a stored image.
    baseline: Option<(CkptId, CheckpointImage)>,
    injections: u64,
    /// Per-pid accumulated redirect table (blocked addr → resume addr):
    /// every injected handler carries the union of all still-blocked
    /// features, not just the current plan's, so repeated customizations
    /// compose.
    redirect_state: std::collections::BTreeMap<Pid, std::collections::BTreeMap<u64, u64>>,
    /// Per-pid accumulated verifier table (patched addr → original byte).
    verify_state: std::collections::BTreeMap<Pid, std::collections::BTreeMap<u64, u8>>,
}

impl DynaCut {
    /// Creates a framework instance over the given binary registry.
    pub fn new(registry: ModuleRegistry) -> Self {
        DynaCut {
            registry,
            dump_options: DumpOptions::default(),
            incremental: false,
            store: CheckpointStore::new(),
            baseline: None,
            injections: 0,
            redirect_state: std::collections::BTreeMap::new(),
            verify_state: std::collections::BTreeMap::new(),
        }
    }

    /// Overrides the dump options (e.g. [`DumpOptions::stock_criu`] to
    /// reproduce the lost-rewrite failure mode).
    pub fn with_dump_options(mut self, options: DumpOptions) -> Self {
        self.dump_options = options;
        self
    }

    /// Enables incremental checkpointing for disable/enable cycles: each
    /// customization pre-dumps clean pages while the guest still runs
    /// (shrinking the freeze window to the dirty residue) and stores the
    /// checkpoint as a dirty-page delta against the previous one. Full
    /// dumps remain the default.
    pub fn with_incremental(mut self) -> Self {
        self.incremental = true;
        self
    }

    /// The checkpoint store accumulated by incremental customizations.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// The registry of binaries.
    pub fn registry(&self) -> &ModuleRegistry {
        &self.registry
    }

    /// Applies a rewrite plan to one or more live processes (a
    /// multi-process application passes all its pids, as with the Nginx
    /// master + worker).
    ///
    /// The processes are frozen, dumped, rewritten as images, and
    /// restored; established TCP connections survive. Wall-clock timings
    /// of each phase are measured and reported; guest-visible downtime is
    /// charged to the kernel clock per [`RewritePlan::downtime`].
    ///
    /// The whole cycle is **transactional** (DESIGN §5): on any error —
    /// before, during, or after the restore swap — the kernel is rolled
    /// back to exactly its pre-customization state (processes alive and
    /// thawed to their prior scheduler states, TCP connections out of
    /// repair mode, dirty bitmaps and the incremental baseline restored)
    /// and this session's accumulated state (registry, redirect/verifier
    /// tables, injection counter) is left untouched, so retrying the same
    /// plan afterwards behaves as if the failed attempt never happened.
    ///
    /// # Errors
    ///
    /// Fails on plan validation, missing processes/modules, or
    /// image-editing errors. The kernel is always left as described
    /// above.
    pub fn customize(
        &mut self,
        kernel: &mut Kernel,
        pids: &[Pid],
        plan: &RewritePlan,
    ) -> Result<CustomizeReport, DynacutError> {
        plan.validate()?;
        let mut report = CustomizeReport::default();
        kernel.record_flight(None, EventKind::CustomizeBegin { pids: pids.len() });

        // Everything this attempt needs to undo on failure. Captured
        // before the first mutation; consumed by `rollback` (failure) or
        // dropped (success).
        let mut journal = TxnJournal {
            frozen: Vec::new(),
            saved_dirty: Vec::new(),
            last_baseline: None,
        };

        // --- checkpoint -------------------------------------------------
        let t_checkpoint = Instant::now();
        // Incremental mode, phase one: copy clean pages while the guest
        // still runs, so the freeze below only has to move the dirty
        // residue. The pre-dump sweeps the dirty bitmap; snapshot it
        // first so a failed cycle can restore it (with the bits intact,
        // the old baseline stays valid across the failure).
        let predump = if self.incremental {
            let t_phase = start_phase(kernel, Phase::PreDump);
            for &pid in pids {
                let dirty = match kernel.process(pid) {
                    Ok(proc) => proc.mem.dirty_pages().collect(),
                    Err(err) => {
                        self.rollback(kernel, pids, journal);
                        return Err(err.into());
                    }
                };
                journal.saved_dirty.push((pid, dirty));
            }
            let pre = match pre_dump(kernel, pids) {
                Ok(pre) => pre,
                Err(err) => {
                    self.rollback(kernel, pids, journal);
                    return Err(err.into());
                }
            };
            // The bitmap now matches no stored checkpoint until a new
            // baseline is stored below; the journal holds the old one
            // for rollback.
            journal.last_baseline = self.baseline.take();
            end_phase(kernel, &mut report, Phase::PreDump, t_phase);
            Some(pre)
        } else {
            None
        };
        let t_phase = start_phase(kernel, Phase::Freeze);
        for &pid in pids {
            if let Err(err) = kernel.freeze(pid) {
                self.rollback(kernel, pids, journal);
                return Err(err.into());
            }
            journal.frozen.push(pid);
        }
        end_phase(kernel, &mut report, Phase::Freeze, t_phase);
        let t_phase = start_phase(kernel, Phase::Dump);
        let dumped = match &predump {
            Some(pre) => pre
                .complete(kernel, pids, self.dump_options)
                .map(|(checkpoint, stats)| {
                    (
                        checkpoint,
                        stats.frozen_page_bytes,
                        stats.prewritten_page_bytes,
                    )
                }),
            None => dump_many(kernel, pids, self.dump_options).map(|checkpoint| {
                let frozen = checkpoint.pages_bytes();
                (checkpoint, frozen, 0)
            }),
        };
        let mut checkpoint = match dumped {
            Ok((checkpoint, frozen, prewritten)) => {
                report.frozen_page_bytes = frozen;
                report.prewritten_page_bytes = prewritten;
                checkpoint
            }
            Err(err) => {
                self.rollback(kernel, pids, journal);
                return Err(err.into());
            }
        };
        // Serialise to the tmpfs-like in-memory store, as the paper does
        // ("we checkpoint the process images into an in-memory
        // filesystem, i.e., tmpfs").
        let tmpfs_bytes = checkpoint.to_bytes();
        report.image_bytes = tmpfs_bytes.len();
        end_phase(kernel, &mut report, Phase::Dump, t_phase);
        report.timings.checkpoint = t_checkpoint.elapsed();

        // --- rewrite ----------------------------------------------------
        // Session state is mutated on *staged copies* only: the
        // accumulated redirect/verifier tables, the registry, and the
        // injection counter all commit together after the restore (and,
        // in incremental mode, the baseline store) succeed. A failure
        // anywhere leaves `self` exactly as it was.
        let t_rewrite = Instant::now();
        let t_phase = start_phase(kernel, Phase::ImageEdit);
        let mut staged_redirect_state = self.redirect_state.clone();
        let mut staged_verify_state = self.verify_state.clone();
        let mut redirects: Vec<Vec<(u64, u64)>> = vec![Vec::new(); checkpoint.procs.len()];
        let mut originals: Vec<Vec<(u64, u8)>> = vec![Vec::new(); checkpoint.procs.len()];
        let result: Result<(), DynacutError> = (|| {
            for (index, image) in checkpoint.procs.iter_mut().enumerate() {
                if fault::hit(FaultPhase::ImageEdit) {
                    return Err(DynacutError::FaultInjected(FaultPhase::ImageEdit));
                }
                let pid = image.core.pid;
                let mut original_text = OriginalText::new();
                for feature in &plan.enable {
                    let Some(module) = image
                        .core
                        .modules
                        .iter()
                        .find(|m| m.name == feature.module)
                    else {
                        continue;
                    };
                    let base = module.base;
                    enable_in_image(image, feature, &self.registry, &mut original_text)?;
                    report.blocks_enabled += feature.blocks.len();
                    // Re-enabled addresses leave the accumulated tables.
                    let in_feature = |addr: u64| {
                        feature
                            .blocks
                            .iter()
                            .any(|b| addr >= base + b.addr && addr < base + b.range().end)
                    };
                    if let Some(state) = staged_redirect_state.get_mut(&pid) {
                        state.retain(|addr, _| !in_feature(*addr));
                    }
                    if let Some(state) = staged_verify_state.get_mut(&pid) {
                        state.retain(|addr, _| !in_feature(*addr));
                    }
                }
                for feature in &plan.disable {
                    if !image.core.modules.iter().any(|m| m.name == feature.module) {
                        continue;
                    }
                    let outcome = disable_in_image(image, feature, plan.block_policy)?;
                    report.blocks_disabled += outcome.blocks;
                    report.bytes_written += outcome.bytes_written;
                    report.pages_unmapped += outcome.pages_unmapped;
                    redirects[index].extend(outcome.redirects);
                    originals[index].extend(outcome.originals);
                }
                for (module, blocks) in &plan.remove_blocks {
                    if !image.core.modules.iter().any(|m| &m.name == module) {
                        continue;
                    }
                    let outcome =
                        remove_blocks_in_image(image, module, blocks, plan.block_policy)?;
                    report.blocks_disabled += outcome.blocks;
                    report.bytes_written += outcome.bytes_written;
                    report.pages_unmapped += outcome.pages_unmapped;
                    originals[index].extend(outcome.originals);
                }
                if let Some(allowed) = &plan.allow_syscalls {
                    let mut mask = 0u64;
                    for &sysno in allowed {
                        // `validate` bounds every number; `checked_shl`
                        // keeps even a hypothetically unvalidated plan
                        // from overflowing the shift.
                        debug_assert!(sysno < u64::from(dynacut_vm::SYSCALL_FILTER_BITS));
                        mask |= 1u64.checked_shl(sysno as u32).unwrap_or(0);
                    }
                    // Signal delivery always needs sigreturn.
                    mask |= 1 << (dynacut_vm::Sysno::Sigreturn as u64);
                    image.set_syscall_filter(mask);
                }
                // Fold this plan's effects into the staged accumulated
                // state and emit the union tables for the handler build
                // below.
                let redirect_acc = staged_redirect_state.entry(pid).or_default();
                for (from, to) in redirects[index].drain(..) {
                    redirect_acc.insert(from, to);
                }
                redirects[index] = redirect_acc.iter().map(|(&f, &t)| (f, t)).collect();
                let verify_acc = staged_verify_state.entry(pid).or_default();
                for (addr, byte) in originals[index].drain(..) {
                    verify_acc.entry(addr).or_insert(byte);
                }
                originals[index] = verify_acc.iter().map(|(&a, &b)| (a, b)).collect();
            }
            Ok(())
        })();
        if let Err(err) = result {
            self.rollback(kernel, pids, journal);
            return Err(err);
        }
        end_phase(kernel, &mut report, Phase::ImageEdit, t_phase);
        report.timings.disable_code = t_rewrite.elapsed();

        // --- fault handler ----------------------------------------------
        let t_handler = Instant::now();
        let t_phase = start_phase(kernel, Phase::Inject);
        // Restore resolves every module named in the images, so built
        // libraries join the (staged) framework registry — later dumps
        // will see them mapped once the cycle commits.
        let mut staged_registry = self.registry.clone();
        let mut staged_injections = self.injections;
        let handler_result: Result<(), DynacutError> = (|| {
            if plan.fault_policy == FaultPolicy::Terminate {
                return Ok(());
            }
            for (index, image) in checkpoint.procs.iter_mut().enumerate() {
                let mut library = match plan.fault_policy {
                    FaultPolicy::Redirect => build_fault_handler(&redirects[index])?,
                    FaultPolicy::Verify => build_verifier_library(&originals[index])?,
                    FaultPolicy::Terminate => unreachable!(),
                };
                // Repeated customizations inject repeatedly: keep module
                // names unique so the registry and module tables stay
                // unambiguous.
                staged_injections += 1;
                library.name = format!("{}@{}", library.name, staged_injections);
                // "By default, DynaCut loads the shared library into a
                // randomized but unused location" (paper §3.2.1). The RNG
                // is seeded per injection so runs stay reproducible.
                let base = {
                    use rand::{Rng, SeedableRng};
                    let mut rng = rand::rngs::StdRng::seed_from_u64(
                        0xD1AC_0DE5 ^ (staged_injections << 8) ^ u64::from(image.core.pid.0),
                    );
                    let window_pages: u64 = 1 << 18; // a 1 GiB placement window
                    let hint = 0x6000_0000_0000u64
                        + (rng.gen::<u64>() % window_pages) * dynacut_obj::PAGE_SIZE;
                    image
                        .mm
                        .find_free(hint, dynacut_obj::page_align(library.footprint()))
                };
                let base = image.inject_library(&library, Some(base), &staged_registry)?;
                staged_registry.insert(std::sync::Arc::new(library.clone()));
                let handler = base + library.symbols["dc_handler"].offset;
                let restorer = base + library.symbols["dc_restorer"].offset;
                image.set_sigaction(
                    Signal::Sigtrap,
                    SigAction {
                        handler,
                        restorer,
                        mask: 0,
                    },
                );
                report.handler_bases.push((image.core.pid, base));
            }
            Ok(())
        })();
        if let Err(err) = handler_result {
            self.rollback(kernel, pids, journal);
            return Err(err);
        }
        for &(pid, base) in &report.handler_bases {
            kernel.record_flight(Some(pid), EventKind::LibraryInjected { base });
        }
        end_phase(kernel, &mut report, Phase::Inject, t_phase);
        report.timings.insert_sighandler = t_handler.elapsed();

        // --- restore ----------------------------------------------------
        // Staged: every replacement process is fully built before the
        // first original is touched, and the swap itself rolls back on a
        // mid-commit failure (see `RestoreTransaction`).
        let t_restore = Instant::now();
        let t_phase = start_phase(kernel, Phase::RestorePrepare);
        let txn = match RestoreTransaction::prepare(kernel, &checkpoint, &staged_registry) {
            Ok(txn) => txn,
            Err(err) => {
                self.rollback(kernel, pids, journal);
                return Err(err.into());
            }
        };
        end_phase(kernel, &mut report, Phase::RestorePrepare, t_phase);
        let t_phase = start_phase(kernel, Phase::RestoreCommit);
        let committed = match txn.commit(kernel) {
            Ok(committed) => committed,
            Err(err) => {
                self.rollback(kernel, pids, journal);
                return Err(err.into());
            }
        };
        end_phase(kernel, &mut report, Phase::RestoreCommit, t_phase);
        report.timings.restore = t_restore.elapsed();

        if self.incremental {
            // The restored memory now equals the edited checkpoint on
            // every clean page, so sweep the bitmap and make that image
            // the new baseline — stored as a dirty-page delta when the
            // chain has a parent. A failure here still rolls the whole
            // cycle back: the committed restore is undone first, putting
            // the original (frozen) processes back for the journal
            // rollback to thaw.
            let t_phase = start_phase(kernel, Phase::BaselineStore);
            let stored: Result<CkptId, DynacutError> = (|| {
                mark_clean_after_dump(kernel, pids)?;
                if fault::hit(FaultPhase::BaselineStore) {
                    return Err(DynacutError::FaultInjected(FaultPhase::BaselineStore));
                }
                match &journal.last_baseline {
                    Some((parent_id, parent)) => {
                        let delta = DeltaImage::diff(*parent_id, parent, &checkpoint);
                        report.stored_page_bytes = Some(delta.pages_bytes());
                        Ok(self.store.put_delta(delta)?)
                    }
                    None => {
                        report.stored_page_bytes = Some(checkpoint.pages_bytes());
                        Ok(self.store.put_full(checkpoint.clone()))
                    }
                }
            })();
            let id = match stored {
                Ok(id) => id,
                Err(err) => {
                    kernel.record_flight(
                        None,
                        EventKind::RollbackStep {
                            step: RollbackStep::UndoRestore,
                        },
                    );
                    committed.undo(kernel);
                    self.rollback(kernel, pids, journal);
                    return Err(err);
                }
            };
            end_phase(kernel, &mut report, Phase::BaselineStore, t_phase);
            report.checkpoint_id = Some(id);
            self.baseline = Some((id, checkpoint));
        }

        // --- commit -----------------------------------------------------
        // Everything succeeded: fold the staged session state in and
        // charge the guest-visible downtime. `journal` is dropped — the
        // originals it would have resurrected no longer exist.
        self.redirect_state = staged_redirect_state;
        self.verify_state = staged_verify_state;
        self.registry = staged_registry;
        self.injections = staged_injections;
        // Label future SIGTRAP hits on the targets with the policy that
        // planted the trap bytes, and fold this cycle's counts into the
        // metrics registry.
        let policy_label = match plan.fault_policy {
            FaultPolicy::Redirect => "redirect",
            FaultPolicy::Verify => "verify",
            FaultPolicy::Terminate => "terminate",
        };
        for &pid in pids {
            kernel.flight_mut().set_trap_policy(pid, policy_label);
        }
        let metrics = kernel.flight_mut().metrics_mut();
        metrics.incr("customize.commits", 1);
        metrics.incr("blocks_patched", report.blocks_disabled as u64);
        metrics.incr("bytes_patched", report.bytes_written);
        metrics.incr("pages_precopied_bytes", report.prewritten_page_bytes as u64);
        metrics.incr("pages_frozen_bytes", report.frozen_page_bytes as u64);
        metrics.incr("injections", report.handler_bases.len() as u64);
        for (phase, elapsed) in &report.phases {
            metrics.observe(&format!("phase.{phase}"), elapsed.as_nanos() as u64);
        }
        kernel.record_flight(None, EventKind::CustomizeCommit);
        kernel.advance_clock(plan.downtime.charge_ns(report.timings.total()));
        Ok(report)
    }

    /// Reverts a failed customization to the pre-call kernel state:
    /// thaws every process this attempt froze (back to its pre-freeze
    /// scheduler state), takes every connection of the target pids out
    /// of TCP repair mode, re-marks the dirty pages the pre-dump swept,
    /// and restores the incremental baseline the attempt displaced.
    fn rollback(&mut self, kernel: &mut Kernel, pids: &[Pid], journal: TxnJournal) {
        for &pid in &journal.frozen {
            let _ = kernel.thaw(pid);
            kernel.record_flight(
                Some(pid),
                EventKind::RollbackStep {
                    step: RollbackStep::Thaw,
                },
            );
        }
        for &pid in pids {
            if let Ok(ids) = kernel.conn_ids_of(pid) {
                kernel.unrepair_connections(&ids);
                kernel.record_flight(
                    Some(pid),
                    EventKind::RollbackStep {
                        step: RollbackStep::Unrepair,
                    },
                );
            }
        }
        for (pid, pages) in &journal.saved_dirty {
            let Ok(proc) = kernel.process_mut(*pid) else {
                continue;
            };
            for &base in pages {
                proc.mem.mark_dirty(base);
            }
            kernel.record_flight(
                Some(*pid),
                EventKind::RollbackStep {
                    step: RollbackStep::RestoreDirtyBits,
                },
            );
        }
        if journal.last_baseline.is_some() {
            self.baseline = journal.last_baseline;
            kernel.record_flight(
                None,
                EventKind::RollbackStep {
                    step: RollbackStep::RestoreBaseline,
                },
            );
        }
        kernel.flight_mut().metrics_mut().incr("customize.rollbacks", 1);
        kernel.record_flight(None, EventKind::CustomizeRollback);
    }

    /// Drains verifier reports from the kernel's event stream: the
    /// absolute addresses of blocks that were blocked but turned out to be
    /// needed (paper §3.2.3).
    pub fn verifier_reports(kernel: &mut Kernel) -> Vec<u64> {
        let events = kernel.drain_events();
        let mut out = Vec::new();
        for event in &events {
            if event.code & VERIFIER_EVENT_BIT != 0 {
                out.push(event.code & !VERIFIER_EVENT_BIT);
            }
        }
        out
    }
}
