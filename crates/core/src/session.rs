//! The DynaCut session: framework state, reports, and the transaction
//! journal. The customize cycle itself is decomposed into explicit
//! stages driven by the scheduler in `engine.rs` ([`Stage`](crate::Stage)).

use crate::handler::VERIFIER_EVENT_BIT;
use crate::plan::RewritePlan;
use crate::DynacutError;
use dynacut_criu::{
    CheckpointImage, CheckpointStore, CkptId, DumpOptions, ModuleRegistry,
};
use dynacut_vm::{EventKind, Kernel, Phase, Pid, RollbackStep};
use std::collections::BTreeMap;
use std::time::{Duration, Instant};

/// Wall-clock timing breakdown of one customization, matching the legend
/// of the paper's Figure 6 (checkpoint / disable code w/ int3 / insert
/// sighandler / restore).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Timings {
    /// Freezing and dumping the process(es), including serialising the
    /// images to the in-memory tmpfs store.
    pub checkpoint: Duration,
    /// Editing the images: trap bytes, wipes, unmaps, restores.
    pub disable_code: Duration,
    /// Building and injecting the fault-handler/verifier library and
    /// patching the sigaction.
    pub insert_sighandler: Duration,
    /// Restoring the process(es).
    pub restore: Duration,
}

impl Timings {
    /// Total service-interruption time.
    pub fn total(&self) -> Duration {
        self.checkpoint + self.disable_code + self.insert_sighandler + self.restore
    }
}

/// What a customization did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CustomizeReport {
    /// Timing breakdown.
    pub timings: Timings,
    /// Distinct basic blocks disabled or removed.
    pub blocks_disabled: usize,
    /// `int3` bytes written.
    pub bytes_written: u64,
    /// Whole pages unmapped.
    pub pages_unmapped: u64,
    /// Blocks re-enabled.
    pub blocks_enabled: usize,
    /// Serialized checkpoint size in bytes (the tmpfs image footprint).
    pub image_bytes: usize,
    /// Base address the handler library was injected at, per process.
    pub handler_bases: Vec<(Pid, u64)>,
    /// Page bytes copied while the processes were frozen. Without
    /// incremental mode this is the whole page payload; with
    /// [`DynaCut::with_incremental`] the pre-dump moves clean pages
    /// before the freeze and only the dirty residue lands here.
    pub frozen_page_bytes: usize,
    /// Page bytes the pre-dump copied while the guest was still running
    /// (zero without incremental mode).
    pub prewritten_page_bytes: usize,
    /// Page bytes the checkpoint occupies in the store: the delta payload
    /// when a parent baseline existed, the full payload otherwise. `None`
    /// without incremental mode (nothing is stored).
    pub stored_page_bytes: Option<usize>,
    /// Page bytes the restore phase **physically copied**. On the
    /// default zero-copy path this counts only first-sight page interns
    /// — pages the content-addressed store had never seen — while every
    /// other restored page is backed by a shared frame and copied only
    /// if a later guest write CoW-faults it. On the copying path
    /// ([`DynaCut::with_copying_restore`]) this is the whole page
    /// payload, once per restore. The `figures restore` experiment gates
    /// on the ratio of the two.
    pub restore_copied_bytes: usize,
    /// Id of the stored checkpoint (incremental mode only).
    pub checkpoint_id: Option<CkptId>,
    /// Fine-grained per-phase durations, in execution order — the same
    /// phases the flight recorder journals ([`Phase`]). Sums to the
    /// cycle's wall-clock cost by construction; the coarse [`Timings`]
    /// buckets above group these into the paper's Figure 6 legend.
    pub phases: Vec<(Phase, Duration)>,
}

impl CustomizeReport {
    /// Sum of every journalled phase duration — the cycle's total
    /// wall-clock cost, by construction equal to summing
    /// [`CustomizeReport::phases`].
    pub fn phase_total(&self) -> Duration {
        self.phases.iter().map(|(_, elapsed)| *elapsed).sum()
    }

    /// This process group's **freeze window**: the summed durations of
    /// the phases its processes spent frozen (freeze through restore
    /// commit). The pre-dump runs while the guest serves and the
    /// baseline store runs after the restored processes are already
    /// live, so neither counts.
    pub fn freeze_window(&self) -> Duration {
        self.phases
            .iter()
            .filter(|(phase, _)| {
                matches!(
                    phase,
                    Phase::Freeze
                        | Phase::Dump
                        | Phase::ImageEdit
                        | Phase::Inject
                        | Phase::RestorePrepare
                        | Phase::RestoreCommit
                )
            })
            .map(|(_, elapsed)| *elapsed)
            .sum()
    }
}

/// Journals a phase start in the flight recorder and returns the
/// wall-clock anchor its matching [`end_phase`] measures from. A
/// `PhaseStart` with no `PhaseEnd` in the journal marks the phase a
/// failed cycle died in.
pub(crate) fn start_phase(kernel: &mut Kernel, phase: Phase) -> Instant {
    kernel.record_flight(None, EventKind::PhaseStart { phase });
    Instant::now()
}

/// Journals a successful phase end and appends its duration to the
/// report's per-phase breakdown.
pub(crate) fn end_phase(
    kernel: &mut Kernel,
    report: &mut CustomizeReport,
    phase: Phase,
    started: Instant,
) {
    let elapsed = started.elapsed();
    kernel.record_flight(
        None,
        EventKind::PhaseEnd {
            phase,
            duration_ns: elapsed.as_nanos() as u64,
        },
    );
    report.phases.push((phase, elapsed));
}

/// Pre-customization state one customize attempt must restore on
/// failure (DESIGN §5): which pids it froze, the dirty-page bits the
/// pre-dump swept, and the incremental baseline it displaced (keyed by
/// the process group that owned it).
pub(crate) struct TxnJournal {
    pub(crate) frozen: Vec<Pid>,
    pub(crate) saved_dirty: Vec<(Pid, Vec<u64>)>,
    pub(crate) baseline_key: Vec<Pid>,
    pub(crate) last_baseline: Option<(CkptId, CheckpointImage)>,
}

/// The DynaCut framework handle: a module registry (the "binaries on
/// disk") plus dump options.
#[derive(Debug, Clone)]
pub struct DynaCut {
    pub(crate) registry: ModuleRegistry,
    pub(crate) dump_options: DumpOptions,
    /// Incremental checkpointing: pre-dump clean pages while the guest
    /// runs and store dirty-page deltas against the previous baseline.
    pub(crate) incremental: bool,
    /// Restore pages as zero-copy shared frames out of the session's
    /// page store (the default). When off, the restore copies every
    /// page byte — kept as the oracle the zero-copy path is checked
    /// against, and as the baseline the restore experiment compares to.
    pub(crate) zero_copy_restore: bool,
    /// Delta-chain checkpoint store (incremental mode only), backed by a
    /// content-addressed page store shared across every group this
    /// session customizes.
    pub(crate) store: CheckpointStore,
    /// Per process group, the checkpoint its dirty bitmaps are clean
    /// against: the edited image restored by the group's previous
    /// customization. A fleet's groups chain independently; an entry is
    /// removed when a cycle displaces it and re-inserted if that cycle
    /// fails.
    pub(crate) baselines: BTreeMap<Vec<Pid>, (CkptId, CheckpointImage)>,
    pub(crate) injections: u64,
    /// Per-pid accumulated redirect table (blocked addr → resume addr):
    /// every injected handler carries the union of all still-blocked
    /// features, not just the current plan's, so repeated customizations
    /// compose.
    pub(crate) redirect_state: BTreeMap<Pid, BTreeMap<u64, u64>>,
    /// Per-pid accumulated verifier table (patched addr → original byte).
    pub(crate) verify_state: BTreeMap<Pid, BTreeMap<u64, u8>>,
}

impl DynaCut {
    /// Creates a framework instance over the given binary registry.
    pub fn new(registry: ModuleRegistry) -> Self {
        DynaCut {
            registry,
            dump_options: DumpOptions::default(),
            incremental: false,
            zero_copy_restore: true,
            store: CheckpointStore::new(),
            baselines: BTreeMap::new(),
            injections: 0,
            redirect_state: BTreeMap::new(),
            verify_state: BTreeMap::new(),
        }
    }

    /// Overrides the dump options (e.g. [`DumpOptions::stock_criu`] to
    /// reproduce the lost-rewrite failure mode).
    pub fn with_dump_options(mut self, options: DumpOptions) -> Self {
        self.dump_options = options;
        self
    }

    /// Enables incremental checkpointing for disable/enable cycles: each
    /// customization pre-dumps clean pages while the guest still runs
    /// (shrinking the freeze window to the dirty residue) and stores the
    /// checkpoint as a dirty-page delta against the previous one. Full
    /// dumps remain the default.
    pub fn with_incremental(mut self) -> Self {
        self.incremental = true;
        self
    }

    /// Disables the zero-copy restore: every restored page is copied
    /// byte for byte instead of being backed by a shared frame. The
    /// guest-visible result — `state_fingerprint()` included — is
    /// bit-identical to the default; only the physical copy cost
    /// ([`CustomizeReport::restore_copied_bytes`]) differs. Used by the
    /// restore experiment as the baseline and by the test battery as
    /// the oracle.
    pub fn with_copying_restore(mut self) -> Self {
        self.zero_copy_restore = false;
        self
    }

    /// The checkpoint store accumulated by incremental customizations.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// The registry of binaries.
    pub fn registry(&self) -> &ModuleRegistry {
        &self.registry
    }

    /// Applies a rewrite plan to one or more live processes (a
    /// multi-process application passes all its pids, as with the Nginx
    /// master + worker).
    ///
    /// The processes are frozen, dumped, rewritten as images, and
    /// restored; established TCP connections survive. Wall-clock timings
    /// of each phase are measured and reported; guest-visible downtime is
    /// charged to the kernel clock per [`RewritePlan::downtime`].
    ///
    /// The cycle runs as the staged sequence of [`crate::Stage`]s
    /// (pre-dump → freeze → dump → image-edit → inject → restore →
    /// baseline-store); [`DynaCut::customize_fleet`] drives the same
    /// stages over many groups, serializing only the freeze windows.
    ///
    /// The whole cycle is **transactional** (DESIGN §5): on any error —
    /// before, during, or after the restore swap — the kernel is rolled
    /// back to exactly its pre-customization state (processes alive and
    /// thawed to their prior scheduler states, TCP connections out of
    /// repair mode, dirty bitmaps and the incremental baseline restored)
    /// and this session's accumulated state (registry, redirect/verifier
    /// tables, injection counter) is left untouched, so retrying the same
    /// plan afterwards behaves as if the failed attempt never happened.
    ///
    /// # Errors
    ///
    /// Fails on plan validation, missing processes/modules, or
    /// image-editing errors. The kernel is always left as described
    /// above.
    pub fn customize(
        &mut self,
        kernel: &mut Kernel,
        pids: &[Pid],
        plan: &RewritePlan,
    ) -> Result<CustomizeReport, DynacutError> {
        plan.validate()?;
        self.run_cycle(kernel, pids, plan)
    }

    /// Reverts a failed customization to the pre-call kernel state:
    /// thaws every process this attempt froze (back to its pre-freeze
    /// scheduler state), takes every connection of the target pids out
    /// of TCP repair mode, re-marks the dirty pages the pre-dump swept,
    /// and restores the incremental baseline the attempt displaced.
    pub(crate) fn rollback(&mut self, kernel: &mut Kernel, pids: &[Pid], journal: TxnJournal) {
        for &pid in &journal.frozen {
            let _ = kernel.thaw(pid);
            kernel.record_flight(
                Some(pid),
                EventKind::RollbackStep {
                    step: RollbackStep::Thaw,
                },
            );
        }
        for &pid in pids {
            if let Ok(ids) = kernel.conn_ids_of(pid) {
                kernel.unrepair_connections(&ids);
                kernel.record_flight(
                    Some(pid),
                    EventKind::RollbackStep {
                        step: RollbackStep::Unrepair,
                    },
                );
            }
        }
        for (pid, pages) in &journal.saved_dirty {
            let Ok(proc) = kernel.process_mut(*pid) else {
                continue;
            };
            for &base in pages {
                proc.mem.mark_dirty(base);
            }
            kernel.record_flight(
                Some(*pid),
                EventKind::RollbackStep {
                    step: RollbackStep::RestoreDirtyBits,
                },
            );
        }
        if let Some(baseline) = journal.last_baseline {
            self.baselines.insert(journal.baseline_key, baseline);
            kernel.record_flight(
                None,
                EventKind::RollbackStep {
                    step: RollbackStep::RestoreBaseline,
                },
            );
        }
        kernel.flight_mut().metrics_mut().incr("customize.rollbacks", 1);
        kernel.record_flight(None, EventKind::CustomizeRollback);
    }

    /// Drains verifier reports from the kernel's event stream: the
    /// absolute addresses of blocks that were blocked but turned out to be
    /// needed (paper §3.2.3).
    ///
    /// Only events tagged with [`VERIFIER_EVENT_BIT`] are consumed;
    /// interleaved guest events (phase markers, application codes) stay
    /// queued for their own consumers. An earlier version drained the
    /// whole stream and kept just the reports, silently destroying
    /// everything else — which would have eaten the journal out from
    /// under a canary soak.
    pub fn verifier_reports(kernel: &mut Kernel) -> Vec<u64> {
        kernel
            .drain_events_where(|event| event.code & VERIFIER_EVENT_BIT != 0)
            .into_iter()
            .map(|event| event.code & !VERIFIER_EVENT_BIT)
            .collect()
    }
}
