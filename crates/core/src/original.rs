//! Recovering original instruction bytes from the binary.
//!
//! Re-enabling a feature replaces the `int3` bytes "with the original
//! instruction bytes" (paper §3). The authoritative source is the binary
//! on disk — here, the [`Image`] in the module registry — materialised at
//! the module's recorded base so load-time relocations (GOT-resolved
//! `movi` immediates) are reproduced exactly.

use crate::DynacutError;
use dynacut_criu::{ModuleRegistry, ProcessImage};
use dynacut_obj::{materialize, Image};
use std::collections::BTreeMap;

/// A cache of materialised module text for one process image.
#[derive(Debug, Default)]
pub struct OriginalText {
    /// module name → (base, text bytes with relocations applied).
    cache: BTreeMap<String, (u64, Vec<u8>)>,
}

impl OriginalText {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The original text bytes for `[offset, offset+len)` of `module` as
    /// loaded in `image`'s process.
    ///
    /// # Errors
    ///
    /// Fails if the module is unknown or the range is out of bounds.
    pub fn bytes(
        &mut self,
        image: &ProcessImage,
        registry: &ModuleRegistry,
        module: &str,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, DynacutError> {
        if !self.cache.contains_key(module) {
            let entry = self.materialise(image, registry, module)?;
            self.cache.insert(module.to_owned(), entry);
        }
        let (_, text) = self.cache.get(module).expect("just inserted");
        let start = offset as usize;
        let end = start + len;
        if end > text.len() {
            return Err(DynacutError::BlockOutOfRange {
                feature: format!("<original text of {module}>"),
                offset,
            });
        }
        Ok(text[start..end].to_vec())
    }

    /// The module's base address in the target process.
    ///
    /// # Errors
    ///
    /// Fails if the module is not mapped in the process.
    pub fn base(&self, image: &ProcessImage, module: &str) -> Result<u64, DynacutError> {
        image
            .core
            .modules
            .iter()
            .find(|m| m.name == module)
            .map(|m| m.base)
            .ok_or_else(|| DynacutError::UnknownModule(module.to_owned()))
    }

    fn materialise(
        &self,
        image: &ProcessImage,
        registry: &ModuleRegistry,
        module: &str,
    ) -> Result<(u64, Vec<u8>), DynacutError> {
        let module_ref = image
            .core
            .modules
            .iter()
            .find(|m| m.name == module)
            .ok_or_else(|| DynacutError::UnknownModule(module.to_owned()))?;
        let binary: &Image = registry
            .get(module)
            .ok_or_else(|| DynacutError::UnknownModule(module.to_owned()))?;
        // Global symbols across all mapped modules for import resolution.
        let mut globals: BTreeMap<String, u64> = BTreeMap::new();
        for other in &image.core.modules {
            let Some(other_binary) = registry.get(&other.name) else {
                continue;
            };
            for (name, def) in &other_binary.symbols {
                globals.entry(name.clone()).or_insert(other.base + def.offset);
            }
        }
        let segments = materialize(binary, module_ref.base, |symbol| {
            globals.get(symbol).copied()
        })
        .map_err(DynacutError::Handler)?;
        let text_segment = segments
            .into_iter()
            .find(|s| s.perms.exec)
            .ok_or_else(|| DynacutError::UnknownModule(format!("{module} has no text")))?;
        Ok((module_ref.base, text_segment.bytes))
    }
}
