//! # dynacut — dynamic and adaptive program customization
//!
//! The primary contribution of the paper: a framework that **disables and
//! re-enables code paths of a running process without interrupting its
//! execution**, by checkpointing the process, rewriting the static
//! checkpoint image, and restoring it (paper §3).
//!
//! The pipeline:
//!
//! 1. **Identify** undesired code with execution-trace diffs
//!    (`dynacut-trace` + `dynacut-analysis`), expressed here as
//!    [`Feature`]s — named sets of basic blocks with an optional redirect
//!    target,
//! 2. **Customize** a live process with [`DynaCut::customize`]: freeze →
//!    CRIU dump → edit images (write `int3`/`0xCC` over block entries,
//!    wipe whole blocks, or unmap pages, per [`BlockPolicy`]) → inject the
//!    synthesised **fault-handler shared library** ([`FaultPolicy`]) and
//!    point the `SIGTRAP` sigaction at it → restore. Live TCP connections
//!    survive,
//! 3. **Re-enable** features later by restoring the original instruction
//!    bytes, recovered from the on-disk binary exactly as the paper does
//!    ("restore the removed features by replacing the `int3` instructions
//!    with the original instruction bytes"),
//! 4. **Validate** with the verifier mode ([`FaultPolicy::Verify`]):
//!    falsely-removed blocks self-heal at run time and are reported back
//!    (paper §3.2.3).
//!
//! [`baselines`] implements RAZOR-like and Chisel-like **static**
//! debloaters used as comparison lines in the paper's Figure 10.
//!
//! ```no_run
//! use dynacut::{DynaCut, Feature, RewritePlan};
//! use dynacut_criu::ModuleRegistry;
//! # fn demo(kernel: &mut dynacut_vm::Kernel, pid: dynacut_vm::Pid,
//! #         registry: ModuleRegistry, feature: Feature) -> Result<(), dynacut::DynacutError> {
//! let mut dynacut = DynaCut::new(registry);
//! let plan = RewritePlan::new().disable(feature);
//! let report = dynacut.customize(kernel, &[pid], &plan)?;
//! println!("service interruption: {} µs", report.timings.total().as_micros());
//! # Ok(())
//! # }
//! ```

pub mod baselines;
mod engine;
mod error;
mod feature;
mod handler;
mod original;
mod plan;
mod profile;
mod rewrite;
mod session;

pub use error::DynacutError;
pub use feature::Feature;
pub use handler::{build_fault_handler, build_verifier_library, VERIFIER_EVENT_BIT};
pub use original::OriginalText;
pub use plan::{BlockPolicy, Downtime, FaultPolicy, RewritePlan, RolloutPlan};
pub use profile::Profiler;
pub use rewrite::{disable_in_image, enable_in_image, remove_blocks_in_image, DisableOutcome};
pub use engine::{
    FleetOptions, FleetReport, FleetTotals, PromotedReplica, RolloutDecision, RolloutReport, Stage,
};
pub use session::{CustomizeReport, DynaCut, Timings};
// The flight-recorder vocabulary [`CustomizeReport::phases`] and the
// journal assertions speak, re-exported so report consumers need not
// depend on `dynacut_vm` directly.
pub use dynacut_vm::{EventKind, FlightEvent, FlightRecorder, Phase, RollbackStep};
