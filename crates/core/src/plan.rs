//! Rewrite plans and policies.

use crate::Feature;
use dynacut_isa::BasicBlock;

/// How a disabled feature's code is removed from memory (paper §3.2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BlockPolicy {
    /// Replace only the **first byte of the feature's entry block** with
    /// `int3`. Cheapest and trivially reversible, but a powerful attacker
    /// may still jump into the middle of the feature's blocks (ROP).
    #[default]
    EntryByte,
    /// Replace **every byte of every block** with `int3` — "wipe out a
    /// block of code memory". No code-reuse gadgets survive; restoring
    /// costs proportionally more.
    WipeBlocks,
    /// Additionally **unmap every page fully covered** by the feature's
    /// blocks (partial pages are wiped). Strongest removal; an access
    /// faults with `SIGSEGV` instead of `SIGTRAP`.
    UnmapPages,
}

/// What happens when blocked code is inadvertently reached (paper
/// §3.2.2–§3.2.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultPolicy {
    /// No handler: the process dies with `SIGTRAP`, "like most existing
    /// works do".
    #[default]
    Terminate,
    /// Inject the fault-handler library; features with a redirect target
    /// resume at the application's error path (the `403 Forbidden`
    /// example), others exit gracefully.
    Redirect,
    /// Inject the verifier library: the original instruction is restored
    /// in place, the address is reported to the host, and execution
    /// retries — used to validate that no wanted block was misclassified.
    Verify,
}

/// How the measured host-side rewrite latency is charged to the guest
/// clock, so customization shows up as a service-interruption window on
/// simulated-time axes (Figure 8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Downtime {
    /// Charge a fixed number of simulated nanoseconds. The paper measures
    /// ≈400 ms for feature customization; that is the default.
    Fixed(u64),
    /// Charge the measured wall-clock duration multiplied by a scale
    /// factor.
    MeasuredTimes(u64),
    /// Charge nothing (pure-mechanism tests).
    None,
}

impl Default for Downtime {
    fn default() -> Self {
        Downtime::Fixed(400_000_000)
    }
}

impl Downtime {
    /// Nanoseconds to charge to the guest clock for a customization whose
    /// host-side phases took `measured`. Saturates instead of overflowing:
    /// a pathological measurement (or scale factor) charges `u64::MAX`
    /// rather than wrapping around to a tiny — or negative-looking —
    /// downtime.
    pub fn charge_ns(&self, measured: std::time::Duration) -> u64 {
        match self {
            Downtime::Fixed(ns) => *ns,
            Downtime::MeasuredTimes(scale) => u64::try_from(measured.as_nanos())
                .unwrap_or(u64::MAX)
                .saturating_mul(*scale),
            Downtime::None => 0,
        }
    }
}

/// Everything one `DynaCut` invocation should do to the target process.
///
/// ```
/// use dynacut::{BlockPolicy, Downtime, FaultPolicy, Feature, RewritePlan};
/// use dynacut_isa::BasicBlock;
///
/// let put = Feature::new("PUT", "nginx", vec![BasicBlock::new(0x40, 8)]);
/// let plan = RewritePlan::new()
///     .disable(put)
///     .with_block_policy(BlockPolicy::WipeBlocks)
///     .with_fault_policy(FaultPolicy::Redirect)
///     .with_downtime(Downtime::None);
/// assert!(plan.validate().is_ok());
/// ```
#[derive(Debug, Clone, Default)]
pub struct RewritePlan {
    /// Features to disable.
    pub disable: Vec<Feature>,
    /// Features to re-enable (original bytes restored).
    pub enable: Vec<Feature>,
    /// Initialization blocks to remove for good: `(module, blocks)`.
    pub remove_blocks: Vec<(String, Vec<BasicBlock>)>,
    /// Code-removal policy.
    pub block_policy: BlockPolicy,
    /// Unintended-access policy.
    pub fault_policy: FaultPolicy,
    /// Guest-visible downtime accounting.
    pub downtime: Downtime,
    /// If set, restrict the process to exactly these raw syscall numbers
    /// (plus `sigreturn`, which signal delivery requires) — dynamic
    /// seccomp filtering via process rewriting (paper §5, after
    /// Ghavamnia et al.'s temporal syscall specialization). A blocked
    /// call kills the process with `SIGSYS`. Numbers must be below
    /// [`dynacut_vm::SYSCALL_FILTER_BITS`];
    /// [`validate`](RewritePlan::validate) rejects the plan otherwise.
    pub allow_syscalls: Option<Vec<u64>>,
}

impl RewritePlan {
    /// An empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a feature to disable.
    pub fn disable(mut self, feature: Feature) -> Self {
        self.disable.push(feature);
        self
    }

    /// Adds a feature to re-enable.
    pub fn enable(mut self, feature: Feature) -> Self {
        self.enable.push(feature);
        self
    }

    /// Adds initialization blocks (module-relative) to remove.
    pub fn remove_init_blocks(mut self, module: &str, blocks: Vec<BasicBlock>) -> Self {
        self.remove_blocks.push((module.to_owned(), blocks));
        self
    }

    /// Sets the block-removal policy.
    pub fn with_block_policy(mut self, policy: BlockPolicy) -> Self {
        self.block_policy = policy;
        self
    }

    /// Sets the unintended-access policy.
    pub fn with_fault_policy(mut self, policy: FaultPolicy) -> Self {
        self.fault_policy = policy;
        self
    }

    /// Sets the downtime accounting.
    pub fn with_downtime(mut self, downtime: Downtime) -> Self {
        self.downtime = downtime;
        self
    }

    /// Restricts the process to the given syscalls after the rewrite
    /// (`sigreturn` is always added — signal delivery depends on it).
    pub fn restrict_syscalls(mut self, allowed: &[dynacut_vm::Sysno]) -> Self {
        self.allow_syscalls = Some(allowed.iter().map(|sysno| *sysno as u64).collect());
        self
    }

    /// Like [`restrict_syscalls`](RewritePlan::restrict_syscalls) but
    /// takes raw syscall numbers, e.g. from an external seccomp profile.
    /// Out-of-range numbers are rejected by
    /// [`validate`](RewritePlan::validate), not here, so a bad profile
    /// surfaces as a typed error instead of a shift overflow.
    pub fn restrict_syscalls_raw(mut self, allowed: &[u64]) -> Self {
        self.allow_syscalls = Some(allowed.to_vec());
        self
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Fails if a block appears both in a disabled and an enabled
    /// feature, or if `allow_syscalls` names a syscall number the filter
    /// bitmask cannot represent.
    pub fn validate(&self) -> Result<(), crate::DynacutError> {
        if let Some(allowed) = &self.allow_syscalls {
            for &sysno in allowed {
                if sysno >= u64::from(dynacut_vm::SYSCALL_FILTER_BITS) {
                    return Err(crate::DynacutError::SyscallOutOfRange(sysno));
                }
            }
        }
        for disabled in &self.disable {
            for enabled in &self.enable {
                if disabled.module != enabled.module {
                    continue;
                }
                for block in &disabled.blocks {
                    if enabled.blocks.contains(block) {
                        return Err(crate::DynacutError::BadPlan(format!(
                            "block {block} is both disabled (`{}`) and enabled (`{}`)",
                            disabled.name, enabled.name
                        )));
                    }
                }
            }
        }
        Ok(())
    }
}

/// How a canary-then-fleet rollout paces and judges its soak (see
/// [`DynaCut::rollout`](crate::DynaCut::rollout)).
///
/// The rewrite itself still comes from a [`RewritePlan`]; this plan only
/// governs the deployment: how long the single customized canary serves
/// in verifier mode before its image is promoted onto the rest of the
/// fleet, and how traffic is pumped while it does.
#[derive(Debug, Clone, Copy)]
pub struct RolloutPlan {
    /// Serve slices the canary soaks for. Any verifier report observed
    /// during the soak demotes the canary instead of promoting it.
    pub soak_slices: u64,
    /// Guest nanoseconds per serve slice — pumped between soak checks
    /// and between per-replica promotions, so the fleet keeps serving
    /// throughout.
    pub serve_slice_ns: u64,
}

impl Default for RolloutPlan {
    fn default() -> Self {
        RolloutPlan {
            soak_slices: 8,
            serve_slice_ns: 200_000,
        }
    }
}

impl RolloutPlan {
    /// Checks the plan is runnable.
    ///
    /// # Errors
    ///
    /// Fails with [`DynacutError::BadPlan`](crate::DynacutError::BadPlan)
    /// if the soak is zero slices — a rollout that never watches its
    /// canary is just a fleet customize, and the promotion decision
    /// would be vacuous.
    pub fn validate(&self) -> Result<(), crate::DynacutError> {
        if self.soak_slices == 0 {
            return Err(crate::DynacutError::BadPlan(
                "rollout soak must be at least one serve slice".into(),
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_policies_match_paper_defaults() {
        let plan = RewritePlan::new();
        assert_eq!(plan.block_policy, BlockPolicy::EntryByte);
        assert_eq!(plan.fault_policy, FaultPolicy::Terminate);
        assert_eq!(plan.downtime, Downtime::Fixed(400_000_000));
    }

    #[test]
    fn conflicting_plan_is_rejected() {
        let block = BasicBlock::new(0x10, 4);
        let plan = RewritePlan::new()
            .disable(Feature::new("a", "app", vec![block]))
            .enable(Feature::new("b", "app", vec![block]));
        assert!(plan.validate().is_err());
    }

    #[test]
    fn disjoint_plan_is_accepted() {
        let plan = RewritePlan::new()
            .disable(Feature::new("a", "app", vec![BasicBlock::new(0x10, 4)]))
            .enable(Feature::new("b", "app", vec![BasicBlock::new(0x20, 4)]));
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn out_of_range_syscall_is_rejected_with_typed_error() {
        let bits = u64::from(dynacut_vm::SYSCALL_FILTER_BITS);
        for sysno in [bits, bits + 1, u64::MAX] {
            let plan = RewritePlan::new().restrict_syscalls_raw(&[0, sysno]);
            assert_eq!(
                plan.validate(),
                Err(crate::DynacutError::SyscallOutOfRange(sysno)),
                "sysno {sysno} must be rejected"
            );
        }
        let plan = RewritePlan::new().restrict_syscalls_raw(&[0, bits - 1]);
        assert!(plan.validate().is_ok(), "in-range numbers pass");
    }

    #[test]
    fn restrict_syscalls_maps_enum_to_raw_numbers() {
        use dynacut_vm::Sysno;
        let plan = RewritePlan::new().restrict_syscalls(&[Sysno::Read, Sysno::Write]);
        assert_eq!(
            plan.allow_syscalls,
            Some(vec![Sysno::Read as u64, Sysno::Write as u64])
        );
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn measured_downtime_saturates_instead_of_overflowing() {
        use std::time::Duration;
        let one_sec = Duration::from_secs(1);
        assert_eq!(Downtime::Fixed(7).charge_ns(one_sec), 7);
        assert_eq!(Downtime::None.charge_ns(one_sec), 0);
        assert_eq!(
            Downtime::MeasuredTimes(3).charge_ns(one_sec),
            3_000_000_000
        );
        // A huge scale factor must clamp, not wrap.
        assert_eq!(
            Downtime::MeasuredTimes(u64::MAX).charge_ns(one_sec),
            u64::MAX
        );
        // A measurement wider than u64 nanoseconds clamps too.
        let huge = Duration::from_secs(u64::MAX);
        assert_eq!(Downtime::MeasuredTimes(2).charge_ns(huge), u64::MAX);
    }
}
