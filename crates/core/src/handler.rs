//! Synthesising the injectable fault-handler and verifier libraries.
//!
//! DynaCut "allows inserting a signal handler to capture the unexpected
//! `int3` execution" (paper §3.2.2). The handler is a position-independent
//! shared library, built here from scratch per rewrite with the redirect
//! table baked into its `.data`, and injected into the checkpointed
//! process by [`ProcessImage::inject_library`].
//!
//! [`ProcessImage::inject_library`]: dynacut_criu::ProcessImage::inject_library

use dynacut_isa::{Assembler, Cond, Insn, Reg, Width};
use dynacut_obj::{Image, ModuleBuilder, ObjError, ObjectKind};
use dynacut_vm::{Sysno, SIG_FRAME_FAULT_ADDR, SIG_FRAME_PC};

/// Bit 63 of an `emit_event` code marks a verifier report; the remaining
/// bits carry the falsely-blocked address. Defined in the VM's flight
/// recorder (the kernel decodes tagged codes into journal events) and
/// re-exported here so the library builder and its callers share one
/// definition.
pub use dynacut_vm::events::VERIFIER_EVENT_BIT;

/// Exit code used when blocked code is reached and no redirect exists.
const BLOCKED_EXIT_CODE: u64 = 135;

fn emit_restorer(asm: &mut Assembler) {
    // After the handler `ret`s, the stack pointer sits at the signal
    // frame base; `sigreturn(sp)` restores the saved context.
    asm.func("dc_restorer");
    asm.push(Insn::Movi(Reg::R0, Sysno::Sigreturn as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::SP));
    asm.push(Insn::Syscall);
}

fn emit_exit(asm: &mut Assembler, label: &str) {
    asm.label(label);
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, BLOCKED_EXIT_CODE));
    asm.push(Insn::Syscall);
}

/// Builds the redirect fault-handler library.
///
/// `redirects` maps **absolute** blocked addresses to **absolute** resume
/// addresses (the application's default error path). On `SIGTRAP`, the
/// handler looks the faulting address up; on a hit it overwrites the
/// frame's saved program counter so `sigreturn` resumes at the error path
/// (paper Figure 5 step ③); on a miss it exits.
///
/// # Errors
///
/// Propagates assembler/linker failures (should not occur for valid
/// tables).
pub fn build_fault_handler(redirects: &[(u64, u64)]) -> Result<Image, ObjError> {
    let mut asm = Assembler::new();
    asm.func("dc_handler");
    // r2 = signal frame (kernel ABI); keep it in r13 across the loop.
    asm.push(Insn::Mov(Reg::R13, Reg::R2));
    asm.push(Insn::Ld(Width::B8, Reg::R3, Reg::R13, SIG_FRAME_FAULT_ADDR as i32));
    asm.lea_ext(Reg::R4, "dc_table", 0);
    asm.push(Insn::Ld(Width::B8, Reg::R5, Reg::R4, 0));
    asm.push(Insn::Movi(Reg::R6, 0));
    asm.label("lookup");
    asm.push(Insn::Cmp(Reg::R6, Reg::R5));
    asm.jcc(Cond::Ae, "miss");
    asm.push(Insn::Mov(Reg::R7, Reg::R6));
    asm.push(Insn::Muli(Reg::R7, 16));
    asm.push(Insn::Add(Reg::R7, Reg::R4));
    asm.push(Insn::Ld(Width::B8, Reg::R8, Reg::R7, 8)); // from
    asm.push(Insn::Cmp(Reg::R8, Reg::R3));
    asm.jcc(Cond::Ne, "next");
    asm.push(Insn::Ld(Width::B8, Reg::R9, Reg::R7, 16)); // to
    asm.push(Insn::St(Width::B8, Reg::R13, SIG_FRAME_PC as i32, Reg::R9));
    asm.push(Insn::Ret);
    asm.label("next");
    asm.push(Insn::Addi(Reg::R6, 1));
    asm.jmp("lookup");
    emit_exit(&mut asm, "miss");
    emit_restorer(&mut asm);

    let mut table = Vec::with_capacity(8 + redirects.len() * 16);
    table.extend_from_slice(&(redirects.len() as u64).to_le_bytes());
    for (from, to) in redirects {
        table.extend_from_slice(&from.to_le_bytes());
        table.extend_from_slice(&to.to_le_bytes());
    }

    let mut builder = ModuleBuilder::new("dc_sighandler", ObjectKind::SharedLib);
    builder.text(asm.finish()?);
    builder.data("dc_table", &table);
    builder.link(&[])
}

/// Builds the verifier library (paper §3.2.3).
///
/// `originals` maps **absolute** patched addresses to the original byte.
/// On `SIGTRAP`, the handler makes the page writable, restores the byte,
/// reports the address to the host via `emit_event` (tagged with
/// [`VERIFIER_EVENT_BIT`]), re-protects the page, and retries the
/// instruction — "instead of terminating program execution …, the
/// verifier library restores the original instructions and logs the false
/// addresses".
///
/// # Errors
///
/// Propagates assembler/linker failures.
pub fn build_verifier_library(originals: &[(u64, u8)]) -> Result<Image, ObjError> {
    let mut asm = Assembler::new();
    asm.func("dc_handler");
    asm.push(Insn::Mov(Reg::R13, Reg::R2)); // frame
    asm.push(Insn::Ld(Width::B8, Reg::R3, Reg::R13, SIG_FRAME_FAULT_ADDR as i32));
    asm.push(Insn::Mov(Reg::R10, Reg::R3)); // fault addr survives syscalls
    asm.lea_ext(Reg::R4, "dc_vtable", 0);
    asm.push(Insn::Ld(Width::B8, Reg::R5, Reg::R4, 0));
    asm.push(Insn::Movi(Reg::R6, 0));
    asm.label("lookup");
    asm.push(Insn::Cmp(Reg::R6, Reg::R5));
    asm.jcc(Cond::Ae, "miss");
    asm.push(Insn::Mov(Reg::R7, Reg::R6));
    asm.push(Insn::Muli(Reg::R7, 16));
    asm.push(Insn::Add(Reg::R7, Reg::R4));
    asm.push(Insn::Ld(Width::B8, Reg::R8, Reg::R7, 8)); // addr
    asm.push(Insn::Cmp(Reg::R8, Reg::R10));
    asm.jcc(Cond::Ne, "next");
    asm.push(Insn::Ld(Width::B8, Reg::R9, Reg::R7, 16)); // original byte
    // page = addr & !0xFFF
    asm.push(Insn::Mov(Reg::R12, Reg::R10));
    asm.push(Insn::Movi(Reg::R11, !0xFFFu64));
    asm.push(Insn::And(Reg::R12, Reg::R11));
    // mprotect(page, 4096, rwx)
    asm.push(Insn::Movi(Reg::R0, Sysno::Mprotect as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R12));
    asm.push(Insn::Movi(Reg::R2, 4096));
    asm.push(Insn::Movi(Reg::R3, 0b111));
    asm.push(Insn::Syscall);
    // restore the original byte
    asm.push(Insn::St(Width::B1, Reg::R10, 0, Reg::R9));
    // mprotect(page, 4096, r-x)
    asm.push(Insn::Movi(Reg::R0, Sysno::Mprotect as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R12));
    asm.push(Insn::Movi(Reg::R2, 4096));
    asm.push(Insn::Movi(Reg::R3, 0b101));
    asm.push(Insn::Syscall);
    // report the false positive to the host
    asm.push(Insn::Movi(Reg::R0, Sysno::EmitEvent as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Movi(Reg::R11, VERIFIER_EVENT_BIT));
    asm.push(Insn::Or(Reg::R1, Reg::R11));
    asm.push(Insn::Syscall);
    // saved pc is unchanged: sigreturn retries the (healed) instruction
    asm.push(Insn::Ret);
    asm.label("next");
    asm.push(Insn::Addi(Reg::R6, 1));
    asm.jmp("lookup");
    emit_exit(&mut asm, "miss");
    emit_restorer(&mut asm);

    let mut table = Vec::with_capacity(8 + originals.len() * 16);
    table.extend_from_slice(&(originals.len() as u64).to_le_bytes());
    for (addr, byte) in originals {
        table.extend_from_slice(&addr.to_le_bytes());
        table.extend_from_slice(&u64::from(*byte).to_le_bytes());
    }

    let mut builder = ModuleBuilder::new("dc_verifier", ObjectKind::SharedLib);
    builder.text(asm.finish()?);
    builder.data("dc_vtable", &table);
    builder.link(&[])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_handler_exports_handler_and_restorer() {
        let image = build_fault_handler(&[(0x40_0040, 0x40_0100)]).unwrap();
        assert!(image.symbols.contains_key("dc_handler"));
        assert!(image.symbols.contains_key("dc_restorer"));
        assert_eq!(image.kind, ObjectKind::SharedLib);
        assert!(image.imports.is_empty(), "self-contained: no PLT needed");
    }

    #[test]
    fn redirect_table_layout() {
        let image = build_fault_handler(&[(0xAAAA, 0xBBBB), (0xCCCC, 0xDDDD)]).unwrap();
        let table_off = (image.symbols["dc_table"].offset - image.data_off) as usize;
        let data = &image.data[table_off..];
        assert_eq!(u64::from_le_bytes(data[0..8].try_into().unwrap()), 2);
        assert_eq!(u64::from_le_bytes(data[8..16].try_into().unwrap()), 0xAAAA);
        assert_eq!(u64::from_le_bytes(data[16..24].try_into().unwrap()), 0xBBBB);
        assert_eq!(u64::from_le_bytes(data[24..32].try_into().unwrap()), 0xCCCC);
    }

    #[test]
    fn verifier_table_stores_bytes_as_words() {
        let image = build_verifier_library(&[(0x1234, 0xAB)]).unwrap();
        let table_off = (image.symbols["dc_vtable"].offset - image.data_off) as usize;
        let data = &image.data[table_off..];
        assert_eq!(u64::from_le_bytes(data[0..8].try_into().unwrap()), 1);
        assert_eq!(u64::from_le_bytes(data[8..16].try_into().unwrap()), 0x1234);
        assert_eq!(u64::from_le_bytes(data[16..24].try_into().unwrap()), 0xAB);
    }

    #[test]
    fn empty_tables_are_valid() {
        assert!(build_fault_handler(&[]).is_ok());
        assert!(build_verifier_library(&[]).is_ok());
    }
}
