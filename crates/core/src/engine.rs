//! The staged customize engine.
//!
//! [`DynaCut::customize`] used to be one monolithic function that walked
//! a single process group end to end. This module decomposes the cycle
//! into explicit [`Stage`]s over a per-group [`CycleState`], which buys
//! two things:
//!
//! * **Single group** — [`DynaCut::customize`] runs the stage sequence
//!   back to back, preserving the monolith's exact journal event order
//!   and transactional contract (DESIGN §5).
//! * **Fleet** — [`DynaCut::customize_fleet`] drives the same stages
//!   over many independent process groups. Stages that run while the
//!   guest serves (the pre-dump) proceed round-robin across groups with
//!   the kernel pumped between steps; the **freeze-serialization
//!   invariant** holds for the rest: at most one group is inside its
//!   freeze window (freeze → restore-commit) at any time, so every
//!   other group keeps serving and the fleet's per-process downtime is
//!   one group's window — max-of-windows, not sum-of-cycles.
//!
//! Every stage is journalled per process as a
//! [`EventKind::StageScheduled`]/[`EventKind::StageRetired`] pair
//! bracketing the group-level `PhaseStart`/`PhaseEnd` events, so a
//! fleet run's flight journal fully orders how the groups interleaved.
//!
//! Checkpoints written by incremental fleet cycles land in the
//! session's content-addressed [`CheckpointStore`]
//! ([`dynacut_criu::PageStore`]): N replicas of the same binary intern
//! one copy of every identical page, which is the fleet experiment's
//! dedup win.

use crate::handler::{build_fault_handler, build_verifier_library};
use crate::original::OriginalText;
use crate::plan::{FaultPolicy, RewritePlan, RolloutPlan};
use crate::rewrite::{disable_in_image, enable_in_image, remove_blocks_in_image};
use crate::session::{end_phase, start_phase, CustomizeReport, TxnJournal};
use crate::{DynaCut, DynacutError};
use dynacut_criu::{
    dump_many, mark_clean_after_dump, pre_dump, CheckpointImage, CommittedRestore, DeltaImage,
    DumpOptions, ModuleRegistry, PreDump, RestoreTransaction,
};
use dynacut_vm::fault::{self, FaultPhase};
use dynacut_vm::{EventKind, Kernel, Phase, Pid, RollbackStep, SchedClass, SigAction, Signal};
use std::collections::{BTreeMap, VecDeque};
use std::time::{Duration, Instant};

/// One stage of the customize cycle, named by the [`Phase`] it executes.
///
/// The split matters to the fleet scheduler: [`Stage::in_freeze_window`]
/// stages run inside a group's exclusive critical section (the group's
/// processes are frozen and no other group may be), while the pre-dump
/// runs concurrently across groups with the guest still serving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stage {
    /// Copy clean pages while the guest still runs (incremental only).
    PreDump,
    /// Freeze the group's processes.
    Freeze,
    /// Dump the frozen processes and serialise to the tmpfs store.
    Dump,
    /// Edit the images: trap bytes, wipes, unmaps, re-enables.
    ImageEdit,
    /// Build and inject the fault-handler/verifier library.
    Inject,
    /// Build every replacement process (no kernel writes).
    RestorePrepare,
    /// Swap the replacements in, all-or-nothing.
    RestoreCommit,
    /// Sweep dirty bits and store the new incremental baseline
    /// (incremental only).
    BaselineStore,
}

impl Stage {
    /// Every stage in execution order. Non-incremental cycles skip
    /// [`Stage::PreDump`] and [`Stage::BaselineStore`].
    pub const SEQUENCE: [Stage; 8] = [
        Stage::PreDump,
        Stage::Freeze,
        Stage::Dump,
        Stage::ImageEdit,
        Stage::Inject,
        Stage::RestorePrepare,
        Stage::RestoreCommit,
        Stage::BaselineStore,
    ];

    /// The flight-recorder phase this stage journals as.
    pub fn phase(self) -> Phase {
        match self {
            Stage::PreDump => Phase::PreDump,
            Stage::Freeze => Phase::Freeze,
            Stage::Dump => Phase::Dump,
            Stage::ImageEdit => Phase::ImageEdit,
            Stage::Inject => Phase::Inject,
            Stage::RestorePrepare => Phase::RestorePrepare,
            Stage::RestoreCommit => Phase::RestoreCommit,
            Stage::BaselineStore => Phase::BaselineStore,
        }
    }

    /// Whether the group's processes are frozen during this stage — the
    /// interval the fleet scheduler serializes across groups. The
    /// pre-dump runs before the freeze; the baseline store runs after
    /// the restored processes are already live again.
    pub fn in_freeze_window(self) -> bool {
        matches!(
            self,
            Stage::Freeze
                | Stage::Dump
                | Stage::ImageEdit
                | Stage::Inject
                | Stage::RestorePrepare
                | Stage::RestoreCommit
        )
    }
}

impl std::fmt::Display for Stage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.phase().fmt(f)
    }
}

/// Everything one group's in-flight cycle carries between stages: the
/// transaction journal, the checkpoint being edited, and the staged
/// session state that commits only if every stage succeeds.
pub(crate) struct CycleState {
    pub(crate) pids: Vec<Pid>,
    /// The one dump-options struct threaded through every stage.
    options: DumpOptions,
    incremental: bool,
    pub(crate) report: CustomizeReport,
    pub(crate) journal: TxnJournal,
    begun: bool,
    predump: Option<PreDump>,
    checkpoint: Option<CheckpointImage>,
    redirects: Vec<Vec<(u64, u64)>>,
    originals: Vec<Vec<(u64, u8)>>,
    staged_redirect_state: Option<BTreeMap<Pid, BTreeMap<u64, u64>>>,
    staged_verify_state: Option<BTreeMap<Pid, BTreeMap<u64, u8>>>,
    staged_registry: Option<ModuleRegistry>,
    staged_injections: u64,
    txn: Option<RestoreTransaction>,
    committed: Option<CommittedRestore>,
}

impl CycleState {
    /// The stages this cycle runs, in order.
    fn stage_sequence(&self) -> Vec<Stage> {
        Stage::SEQUENCE
            .into_iter()
            .filter(|stage| {
                self.incremental || !matches!(stage, Stage::PreDump | Stage::BaselineStore)
            })
            .collect()
    }

    /// Journals the cycle's `CustomizeBegin` (once).
    fn begin(&mut self, kernel: &mut Kernel) {
        if !self.begun {
            self.begun = true;
            kernel.record_flight(
                None,
                EventKind::CustomizeBegin {
                    pids: self.pids.len(),
                },
            );
        }
    }
}

/// Knobs for [`DynaCut::customize_fleet`].
#[derive(Debug, Clone, Copy)]
pub struct FleetOptions {
    /// Guest nanoseconds the scheduler pumps the kernel for between
    /// stage steps ([`Kernel::run_for`]), so unfrozen groups keep
    /// serving while another group's cycle proceeds.
    pub serve_slice_ns: u64,
}

impl Default for FleetOptions {
    fn default() -> Self {
        FleetOptions {
            serve_slice_ns: 200_000,
        }
    }
}

/// What a fleet customization did: one [`CustomizeReport`] per process
/// plus fleet-wide totals.
#[derive(Debug, Clone, Default)]
pub struct FleetReport {
    /// Per-process cycle reports. Every pid of a multi-process group
    /// maps to its group's report, so the PR 3 invariant — phase
    /// durations sum to the cycle total — holds per process.
    pub procs: BTreeMap<Pid, CustomizeReport>,
    /// Fleet-wide aggregates.
    pub totals: FleetTotals,
}

/// Fleet-wide aggregates of one [`DynaCut::customize_fleet`] run.
#[derive(Debug, Clone, Default)]
pub struct FleetTotals {
    /// Process groups customized.
    pub groups: usize,
    /// Processes customized (sum of group sizes).
    pub processes: usize,
    /// Page bytes copied inside freeze windows, fleet-wide.
    pub frozen_page_bytes: usize,
    /// Page bytes pre-copied while guests served, fleet-wide.
    pub prewritten_page_bytes: usize,
    /// Serialized checkpoint bytes (tmpfs footprint), fleet-wide.
    pub image_bytes: usize,
    /// Logical page bytes written into the checkpoint store (what a
    /// store without content addressing would hold for these cycles).
    pub stored_page_bytes: usize,
    /// Page bytes restore phases physically copied, fleet-wide (see
    /// [`CustomizeReport::restore_copied_bytes`]). On the zero-copy path
    /// this scales with *distinct rewritten pages*, not resident set ×
    /// replicas.
    pub restore_copied_bytes: usize,
    /// Page bytes the session's store physically holds after the run:
    /// one copy per distinct page content.
    pub unique_page_bytes: usize,
    /// Page bytes deduplicated away by content addressing
    /// (`logical − unique` over the session's store).
    pub shared_page_bytes: usize,
    /// The store's dedup win, `logical / unique` (1.0 when nothing was
    /// stored). With N near-identical replicas this approaches N.
    pub dedup_ratio: f64,
    /// Longest per-group freeze window — the worst per-process downtime
    /// in the fleet. Because freeze windows are serialized, this is what
    /// any one process experiences; a monolithic whole-fleet freeze
    /// would have cost [`FleetTotals::sum_freeze_window`] instead.
    pub max_freeze_window: Duration,
    /// Sum of all per-group freeze windows (the aggregate a whole-fleet
    /// freeze would impose on every process at once).
    pub sum_freeze_window: Duration,
    /// Wall-clock duration of the whole fleet run, including the serve
    /// slices pumped between stages.
    pub wall: Duration,
}

impl DynaCut {
    /// Opens a new cycle over one process group.
    fn begin_cycle(&self, pids: &[Pid]) -> CycleState {
        CycleState {
            pids: pids.to_vec(),
            options: self.dump_options,
            incremental: self.incremental,
            report: CustomizeReport::default(),
            journal: TxnJournal {
                frozen: Vec::new(),
                saved_dirty: Vec::new(),
                baseline_key: pids.to_vec(),
                last_baseline: None,
            },
            begun: false,
            predump: None,
            checkpoint: None,
            redirects: Vec::new(),
            originals: Vec::new(),
            staged_redirect_state: None,
            staged_verify_state: None,
            staged_registry: None,
            staged_injections: self.injections,
            txn: None,
            committed: None,
        }
    }

    /// Tags every process of an in-flight cycle with a scheduling
    /// class. Cycle work pumps serve slices between stages, and a
    /// group mid-customize (post-restore catch-up bursts, repair-mode
    /// drains) must not steal quanta from replicas that are purely
    /// serving — the MLFQ pins [`SchedClass::Background`] processes to
    /// its bottom level. The tag is host-side scheduler state only: it
    /// survives the remove/insert swap of a restore and never reaches a
    /// fingerprint or checkpoint, so tagging cannot perturb the
    /// transactional parity guarantees.
    fn set_group_class(kernel: &mut Kernel, pids: &[Pid], class: SchedClass) {
        for &pid in pids {
            kernel.set_sched_class(pid, class);
        }
    }

    /// Runs the full stage sequence over one group — the single-group
    /// customize path. Rolls the cycle back on any stage failure.
    pub(crate) fn run_cycle(
        &mut self,
        kernel: &mut Kernel,
        pids: &[Pid],
        plan: &RewritePlan,
    ) -> Result<CustomizeReport, DynacutError> {
        let mut cycle = self.begin_cycle(pids);
        cycle.begin(kernel);
        Self::set_group_class(kernel, pids, SchedClass::Background);
        for stage in cycle.stage_sequence() {
            if let Err(err) = self.run_stage(kernel, &mut cycle, plan, stage) {
                let CycleState { pids, journal, .. } = cycle;
                self.rollback(kernel, &pids, journal);
                Self::set_group_class(kernel, &pids, SchedClass::Normal);
                return Err(err);
            }
        }
        Self::set_group_class(kernel, pids, SchedClass::Normal);
        Ok(self.commit_cycle(kernel, cycle, plan))
    }

    /// Customizes a fleet of independent process groups with one plan.
    ///
    /// Stages that run while the guest serves (the incremental
    /// pre-dump) proceed **round-robin** across groups; the freeze
    /// window — freeze through restore-commit (plus the baseline store,
    /// which must observe the just-restored group unperturbed) — is
    /// **serialized**: at most one group is frozen at any time, and the
    /// kernel is pumped for [`FleetOptions::serve_slice_ns`] guest
    /// nanoseconds between steps so every other group keeps serving.
    /// The per-pid [`EventKind::StageScheduled`]/[`EventKind::StageRetired`]
    /// journal pairs record the interleaving.
    ///
    /// Each group's cycle is individually transactional, exactly as
    /// [`DynaCut::customize`]: a stage failure rolls that group — and
    /// every group whose pre-dump already swept state — back to its
    /// pre-call state and returns the error. Groups that already
    /// committed before the failure stay committed (their processes were
    /// already serving the new behaviour).
    ///
    /// # Errors
    ///
    /// Fails on plan validation or on the first group whose cycle fails,
    /// with the rollback semantics above.
    pub fn customize_fleet(
        &mut self,
        kernel: &mut Kernel,
        groups: &[Vec<Pid>],
        plan: &RewritePlan,
        options: &FleetOptions,
    ) -> Result<FleetReport, DynacutError> {
        plan.validate()?;
        let started = Instant::now();
        let mut cycles: VecDeque<CycleState> =
            groups.iter().map(|group| self.begin_cycle(group)).collect();

        // Wave 1 — concurrent stages. Every group pre-dumps while its
        // own (and everyone else's) processes still run; the serve
        // slices between steps let queued client traffic drain.
        if self.incremental {
            let mut failed = None;
            for cycle in &mut cycles {
                cycle.begin(kernel);
                Self::set_group_class(kernel, &cycle.pids, SchedClass::Background);
                if let Err(err) = self.run_stage(kernel, cycle, plan, Stage::PreDump) {
                    failed = Some(err);
                    break;
                }
                kernel.run_for(options.serve_slice_ns);
            }
            if let Some(err) = failed {
                return Err(self.abort_fleet(kernel, cycles, err));
            }
        }

        // Wave 2 — the serialized freeze windows. One group at a time
        // holds the freeze token from its freeze through its commit;
        // the kernel is pumped between groups so the rest of the fleet
        // serves during every other group's window.
        let mut report = FleetReport::default();
        while let Some(mut cycle) = cycles.pop_front() {
            cycle.begin(kernel);
            Self::set_group_class(kernel, &cycle.pids, SchedClass::Background);
            let window: Vec<Stage> = cycle
                .stage_sequence()
                .into_iter()
                .filter(|stage| *stage != Stage::PreDump)
                .collect();
            for stage in window {
                if let Err(err) = self.run_stage(kernel, &mut cycle, plan, stage) {
                    let CycleState { pids, journal, .. } = cycle;
                    self.rollback(kernel, &pids, journal);
                    Self::set_group_class(kernel, &pids, SchedClass::Normal);
                    return Err(self.abort_fleet(kernel, cycles, err));
                }
            }
            let pids = cycle.pids.clone();
            let group_report = self.commit_cycle(kernel, cycle, plan);
            // Committed: the group is a plain serving replica again.
            Self::set_group_class(kernel, &pids, SchedClass::Normal);
            report.totals.groups += 1;
            report.totals.processes += pids.len();
            report.totals.frozen_page_bytes += group_report.frozen_page_bytes;
            report.totals.prewritten_page_bytes += group_report.prewritten_page_bytes;
            report.totals.image_bytes += group_report.image_bytes;
            report.totals.stored_page_bytes += group_report.stored_page_bytes.unwrap_or(0);
            report.totals.restore_copied_bytes += group_report.restore_copied_bytes;
            let window = group_report.freeze_window();
            report.totals.max_freeze_window = report.totals.max_freeze_window.max(window);
            report.totals.sum_freeze_window += window;
            for &pid in &pids {
                report.procs.insert(pid, group_report.clone());
            }
            kernel.run_for(options.serve_slice_ns);
        }

        let pages = self.store.page_store();
        report.totals.unique_page_bytes = pages.unique_bytes();
        report.totals.shared_page_bytes = pages.shared_bytes();
        report.totals.dedup_ratio = pages.dedup_ratio();
        report.totals.wall = started.elapsed();
        Ok(report)
    }

    /// Unwinds every pending group that already has journal state (its
    /// pre-dump swept dirty bits or displaced a baseline) after another
    /// group's cycle failed, and passes the error through.
    fn abort_fleet(
        &mut self,
        kernel: &mut Kernel,
        cycles: VecDeque<CycleState>,
        err: DynacutError,
    ) -> DynacutError {
        for cycle in cycles {
            let begun = cycle.begun;
            let CycleState { pids, journal, .. } = cycle;
            if begun {
                self.rollback(kernel, &pids, journal);
            }
            // Untag unconditionally: a never-begun group was still
            // tagged if wave 1 reached it before the failure.
            Self::set_group_class(kernel, &pids, SchedClass::Normal);
        }
        err
    }

    /// Runs one stage for one group: per-pid `StageScheduled` events,
    /// the group-level phase bracket, the stage body, then per-pid
    /// `StageRetired` events. A failing stage leaves its `PhaseStart`
    /// dangling (and retires nothing) — the journal names the stage the
    /// cycle died in, exactly as the monolithic path did.
    fn run_stage(
        &mut self,
        kernel: &mut Kernel,
        cycle: &mut CycleState,
        plan: &RewritePlan,
        stage: Stage,
    ) -> Result<(), DynacutError> {
        let phase = stage.phase();
        for index in 0..cycle.pids.len() {
            let pid = cycle.pids[index];
            kernel.record_flight(Some(pid), EventKind::StageScheduled { stage: phase });
        }
        let started = start_phase(kernel, phase);
        self.stage_body(kernel, cycle, plan, stage)?;
        end_phase(kernel, &mut cycle.report, phase, started);
        let elapsed = cycle
            .report
            .phases
            .last()
            .map(|(_, elapsed)| *elapsed)
            .unwrap_or_default();
        match stage {
            Stage::PreDump | Stage::Freeze | Stage::Dump => {
                cycle.report.timings.checkpoint += elapsed;
            }
            Stage::ImageEdit => cycle.report.timings.disable_code += elapsed,
            Stage::Inject => cycle.report.timings.insert_sighandler += elapsed,
            Stage::RestorePrepare | Stage::RestoreCommit => {
                cycle.report.timings.restore += elapsed;
            }
            // Outside the paper's Figure 6 legend: the baseline store
            // happens after the processes are serving again.
            Stage::BaselineStore => {}
        }
        for index in 0..cycle.pids.len() {
            let pid = cycle.pids[index];
            kernel.record_flight(
                Some(pid),
                EventKind::StageRetired {
                    stage: phase,
                    duration_ns: elapsed.as_nanos() as u64,
                },
            );
        }
        Ok(())
    }

    /// The stage bodies, moved verbatim from the monolithic customize.
    fn stage_body(
        &mut self,
        kernel: &mut Kernel,
        cycle: &mut CycleState,
        plan: &RewritePlan,
        stage: Stage,
    ) -> Result<(), DynacutError> {
        match stage {
            // Incremental mode, phase one: copy clean pages while the
            // guest still runs, so the freeze only has to move the dirty
            // residue. The pre-dump sweeps the dirty bitmap; snapshot it
            // first so a failed cycle can restore it (with the bits
            // intact, the old baseline stays valid across the failure).
            Stage::PreDump => {
                for index in 0..cycle.pids.len() {
                    let pid = cycle.pids[index];
                    let dirty = kernel.process(pid)?.mem.dirty_pages().collect();
                    cycle.journal.saved_dirty.push((pid, dirty));
                }
                cycle.predump = Some(pre_dump(kernel, &cycle.pids)?);
                // The bitmap now matches no stored checkpoint until a
                // new baseline is stored below; the journal holds the
                // old one for rollback.
                cycle.journal.last_baseline = self.baselines.remove(&cycle.journal.baseline_key);
                Ok(())
            }
            Stage::Freeze => {
                for index in 0..cycle.pids.len() {
                    let pid = cycle.pids[index];
                    kernel.freeze(pid)?;
                    cycle.journal.frozen.push(pid);
                }
                Ok(())
            }
            Stage::Dump => {
                let dumped = match &cycle.predump {
                    Some(pre) => pre.complete(kernel, &cycle.pids, &cycle.options).map(
                        |(checkpoint, stats)| {
                            (
                                checkpoint,
                                stats.frozen_page_bytes,
                                stats.prewritten_page_bytes,
                            )
                        },
                    ),
                    None => {
                        dump_many(kernel, &cycle.pids, &cycle.options).map(|checkpoint| {
                            let frozen = checkpoint.pages_bytes();
                            (checkpoint, frozen, 0)
                        })
                    }
                };
                let (checkpoint, frozen, prewritten) = dumped?;
                cycle.report.frozen_page_bytes = frozen;
                cycle.report.prewritten_page_bytes = prewritten;
                // Serialise to the tmpfs-like in-memory store, as the
                // paper does ("we checkpoint the process images into an
                // in-memory filesystem, i.e., tmpfs").
                let tmpfs_bytes = checkpoint.to_bytes();
                cycle.report.image_bytes = tmpfs_bytes.len();
                cycle.checkpoint = Some(checkpoint);
                Ok(())
            }
            // Session state is mutated on *staged copies* only: the
            // accumulated redirect/verifier tables, the registry, and
            // the injection counter all commit together after the
            // restore (and, in incremental mode, the baseline store)
            // succeed. A failure anywhere leaves `self` exactly as it
            // was.
            Stage::ImageEdit => self.stage_image_edit(cycle, plan),
            Stage::Inject => self.stage_inject(kernel, cycle, plan),
            // Staged: every replacement process is fully built before
            // the first original is touched, and the swap itself rolls
            // back on a mid-commit failure (see `RestoreTransaction`).
            Stage::RestorePrepare => {
                let checkpoint = cycle.checkpoint.as_ref().expect("dump stage ran");
                let registry = cycle.staged_registry.as_ref().expect("inject stage ran");
                if self.zero_copy_restore {
                    // Zero-copy: intern the edited payload into the
                    // session's content-addressed store (copying only
                    // pages it has never seen — later replicas hash-hit
                    // the first one's baseline) and back every staged
                    // page with a shared frame. The interning refs are
                    // released inside `prepare_shared`; the staged
                    // processes keep the frames alive, so the store's
                    // refcounts are unchanged on every path.
                    let copied_before = self.store.page_store().copied_bytes();
                    let txn = RestoreTransaction::prepare_shared(
                        kernel,
                        checkpoint,
                        registry,
                        self.store.page_store_mut(),
                    )?;
                    cycle.report.restore_copied_bytes =
                        (self.store.page_store().copied_bytes() - copied_before) as usize;
                    cycle.txn = Some(txn);
                } else {
                    // Copying baseline: every dumped page is written
                    // into the staged address spaces byte for byte.
                    cycle.report.restore_copied_bytes = checkpoint.pages_bytes();
                    cycle.txn = Some(RestoreTransaction::prepare(kernel, checkpoint, registry)?);
                }
                Ok(())
            }
            Stage::RestoreCommit => {
                let txn = cycle.txn.take().expect("restore was prepared");
                let committed = txn.commit(kernel)?;
                // The swap just replaced these processes' text with the
                // rewritten images (planted traps, wiped blocks,
                // re-enables), and `commit` started them with cold
                // block caches. A customize cycle knows more than a raw
                // image swap, though: it holds the displaced originals,
                // so it can carry each one's cache forward under a
                // bumped rewrite epoch — byte-identical code pages keep
                // their generations (their blocks version-swap in
                // without a re-decode), rewritten pages are seeded past
                // every carried snapshot (their blocks can never
                // validate). No flush, no cold restart, traps still
                // land (DESIGN §11).
                committed.carry_block_caches(kernel);
                cycle.committed = Some(committed);
                Ok(())
            }
            Stage::BaselineStore => self.stage_baseline_store(kernel, cycle),
        }
    }

    /// Edits the dumped images per the plan: re-enables, trap bytes,
    /// wipes, unmaps, and the syscall filter, folding the effects into
    /// the staged accumulated tables.
    fn stage_image_edit(
        &mut self,
        cycle: &mut CycleState,
        plan: &RewritePlan,
    ) -> Result<(), DynacutError> {
        let checkpoint = cycle.checkpoint.as_mut().expect("dump stage ran");
        let mut staged_redirect_state = self.redirect_state.clone();
        let mut staged_verify_state = self.verify_state.clone();
        let mut redirects: Vec<Vec<(u64, u64)>> = vec![Vec::new(); checkpoint.procs.len()];
        let mut originals: Vec<Vec<(u64, u8)>> = vec![Vec::new(); checkpoint.procs.len()];
        for (index, image) in checkpoint.procs.iter_mut().enumerate() {
            if fault::hit(FaultPhase::ImageEdit) {
                return Err(DynacutError::FaultInjected(FaultPhase::ImageEdit));
            }
            let pid = image.core.pid;
            let mut original_text = OriginalText::new();
            for feature in &plan.enable {
                let Some(module) = image
                    .core
                    .modules
                    .iter()
                    .find(|m| m.name == feature.module)
                else {
                    continue;
                };
                let base = module.base;
                enable_in_image(image, feature, &self.registry, &mut original_text)?;
                cycle.report.blocks_enabled += feature.blocks.len();
                // Re-enabled addresses leave the accumulated tables.
                let in_feature = |addr: u64| {
                    feature
                        .blocks
                        .iter()
                        .any(|b| addr >= base + b.addr && addr < base + b.range().end)
                };
                if let Some(state) = staged_redirect_state.get_mut(&pid) {
                    state.retain(|addr, _| !in_feature(*addr));
                }
                if let Some(state) = staged_verify_state.get_mut(&pid) {
                    state.retain(|addr, _| !in_feature(*addr));
                }
            }
            for feature in &plan.disable {
                if !image.core.modules.iter().any(|m| m.name == feature.module) {
                    continue;
                }
                let outcome = disable_in_image(image, feature, plan.block_policy)?;
                cycle.report.blocks_disabled += outcome.blocks;
                cycle.report.bytes_written += outcome.bytes_written;
                cycle.report.pages_unmapped += outcome.pages_unmapped;
                redirects[index].extend(outcome.redirects);
                originals[index].extend(outcome.originals);
            }
            for (module, blocks) in &plan.remove_blocks {
                if !image.core.modules.iter().any(|m| &m.name == module) {
                    continue;
                }
                let outcome = remove_blocks_in_image(image, module, blocks, plan.block_policy)?;
                cycle.report.blocks_disabled += outcome.blocks;
                cycle.report.bytes_written += outcome.bytes_written;
                cycle.report.pages_unmapped += outcome.pages_unmapped;
                originals[index].extend(outcome.originals);
            }
            if let Some(allowed) = &plan.allow_syscalls {
                let mut mask = 0u64;
                for &sysno in allowed {
                    // `validate` bounds every number; `checked_shl`
                    // keeps even a hypothetically unvalidated plan from
                    // overflowing the shift.
                    debug_assert!(sysno < u64::from(dynacut_vm::SYSCALL_FILTER_BITS));
                    mask |= 1u64.checked_shl(sysno as u32).unwrap_or(0);
                }
                // Signal delivery always needs sigreturn.
                mask |= 1 << (dynacut_vm::Sysno::Sigreturn as u64);
                image.set_syscall_filter(mask);
            }
            // Fold this plan's effects into the staged accumulated
            // state and emit the union tables for the handler build
            // below.
            let redirect_acc = staged_redirect_state.entry(pid).or_default();
            for (from, to) in redirects[index].drain(..) {
                redirect_acc.insert(from, to);
            }
            redirects[index] = redirect_acc.iter().map(|(&f, &t)| (f, t)).collect();
            let verify_acc = staged_verify_state.entry(pid).or_default();
            for (addr, byte) in originals[index].drain(..) {
                verify_acc.entry(addr).or_insert(byte);
            }
            originals[index] = verify_acc.iter().map(|(&a, &b)| (a, b)).collect();
        }
        cycle.staged_redirect_state = Some(staged_redirect_state);
        cycle.staged_verify_state = Some(staged_verify_state);
        cycle.redirects = redirects;
        cycle.originals = originals;
        Ok(())
    }

    /// Builds and injects the fault-handler/verifier library into every
    /// image and points the `SIGTRAP` sigaction at it.
    fn stage_inject(
        &mut self,
        kernel: &mut Kernel,
        cycle: &mut CycleState,
        plan: &RewritePlan,
    ) -> Result<(), DynacutError> {
        // Restore resolves every module named in the images, so built
        // libraries join the (staged) framework registry — later dumps
        // will see them mapped once the cycle commits.
        let mut staged_registry = self.registry.clone();
        let mut staged_injections = self.injections;
        let checkpoint = cycle.checkpoint.as_mut().expect("dump stage ran");
        if plan.fault_policy != FaultPolicy::Terminate {
            for (index, image) in checkpoint.procs.iter_mut().enumerate() {
                let mut library = match plan.fault_policy {
                    FaultPolicy::Redirect => build_fault_handler(&cycle.redirects[index])?,
                    FaultPolicy::Verify => build_verifier_library(&cycle.originals[index])?,
                    FaultPolicy::Terminate => unreachable!(),
                };
                // Repeated customizations inject repeatedly: keep module
                // names unique so the registry and module tables stay
                // unambiguous.
                staged_injections += 1;
                library.name = format!("{}@{}", library.name, staged_injections);
                // "By default, DynaCut loads the shared library into a
                // randomized but unused location" (paper §3.2.1). The
                // RNG is seeded per injection so runs stay reproducible.
                let base = {
                    use rand::{Rng, SeedableRng};
                    let mut rng = rand::rngs::StdRng::seed_from_u64(
                        0xD1AC_0DE5 ^ (staged_injections << 8) ^ u64::from(image.core.pid.0),
                    );
                    let window_pages: u64 = 1 << 18; // a 1 GiB placement window
                    let hint = 0x6000_0000_0000u64
                        + (rng.gen::<u64>() % window_pages) * dynacut_obj::PAGE_SIZE;
                    image
                        .mm
                        .find_free(hint, dynacut_obj::page_align(library.footprint()))
                };
                let base = image.inject_library(&library, Some(base), &staged_registry)?;
                staged_registry.insert(std::sync::Arc::new(library.clone()));
                let handler = base + library.symbols["dc_handler"].offset;
                let restorer = base + library.symbols["dc_restorer"].offset;
                image.set_sigaction(
                    Signal::Sigtrap,
                    SigAction {
                        handler,
                        restorer,
                        mask: 0,
                    },
                );
                cycle.report.handler_bases.push((image.core.pid, base));
            }
        }
        for &(pid, base) in &cycle.report.handler_bases {
            kernel.record_flight(Some(pid), EventKind::LibraryInjected { base });
        }
        cycle.staged_registry = Some(staged_registry);
        cycle.staged_injections = staged_injections;
        Ok(())
    }

    /// The restored memory now equals the edited checkpoint on every
    /// clean page, so sweep the bitmap and make that image the new
    /// baseline — stored as a dirty-page delta when the chain has a
    /// parent, writing the payload through the session's
    /// content-addressed store either way. A failure here still rolls
    /// the whole cycle back: the committed restore is undone first,
    /// putting the original (frozen) processes back for the journal
    /// rollback to thaw.
    fn stage_baseline_store(
        &mut self,
        kernel: &mut Kernel,
        cycle: &mut CycleState,
    ) -> Result<(), DynacutError> {
        let checkpoint = cycle.checkpoint.take().expect("dump stage ran");
        let stored: Result<CkptIdAndBytes, DynacutError> = (|| {
            mark_clean_after_dump(kernel, &cycle.pids)?;
            if fault::hit(FaultPhase::BaselineStore) {
                return Err(DynacutError::FaultInjected(FaultPhase::BaselineStore));
            }
            match &cycle.journal.last_baseline {
                Some((parent_id, parent)) => {
                    let delta = DeltaImage::diff(*parent_id, parent, &checkpoint);
                    let bytes = delta.pages_bytes();
                    Ok((self.store.put_delta(delta)?, bytes))
                }
                None => {
                    let bytes = checkpoint.pages_bytes();
                    Ok((self.store.put_full(checkpoint.clone())?, bytes))
                }
            }
        })();
        match stored {
            Ok((id, bytes)) => {
                cycle.report.stored_page_bytes = Some(bytes);
                cycle.report.checkpoint_id = Some(id);
                self.baselines
                    .insert(cycle.journal.baseline_key.clone(), (id, checkpoint));
                Ok(())
            }
            Err(err) => {
                kernel.record_flight(
                    None,
                    EventKind::RollbackStep {
                        step: RollbackStep::UndoRestore,
                    },
                );
                cycle
                    .committed
                    .take()
                    .expect("restore committed before the baseline store")
                    .undo(kernel);
                Err(err)
            }
        }
    }

    /// Every stage succeeded: fold the staged session state in and
    /// charge the guest-visible downtime. The cycle's journal is
    /// dropped — the originals it would have resurrected no longer
    /// exist.
    fn commit_cycle(
        &mut self,
        kernel: &mut Kernel,
        cycle: CycleState,
        plan: &RewritePlan,
    ) -> CustomizeReport {
        let CycleState {
            pids,
            report,
            staged_redirect_state,
            staged_verify_state,
            staged_registry,
            staged_injections,
            ..
        } = cycle;
        if let Some(state) = staged_redirect_state {
            self.redirect_state = state;
        }
        if let Some(state) = staged_verify_state {
            self.verify_state = state;
        }
        if let Some(registry) = staged_registry {
            self.registry = registry;
        }
        self.injections = staged_injections;
        // Label future SIGTRAP hits on the targets with the policy that
        // planted the trap bytes, and fold this cycle's counts into the
        // metrics registry.
        let policy_label = match plan.fault_policy {
            FaultPolicy::Redirect => "redirect",
            FaultPolicy::Verify => "verify",
            FaultPolicy::Terminate => "terminate",
        };
        for &pid in &pids {
            kernel.flight_mut().set_trap_policy(pid, policy_label);
        }
        let metrics = kernel.flight_mut().metrics_mut();
        metrics.incr("customize.commits", 1);
        metrics.incr("blocks_patched", report.blocks_disabled as u64);
        metrics.incr("bytes_patched", report.bytes_written);
        metrics.incr("pages_precopied_bytes", report.prewritten_page_bytes as u64);
        metrics.incr("pages_frozen_bytes", report.frozen_page_bytes as u64);
        metrics.incr("pages_restore_copied_bytes", report.restore_copied_bytes as u64);
        metrics.incr("injections", report.handler_bases.len() as u64);
        for (phase, elapsed) in &report.phases {
            metrics.observe(&format!("phase.{phase}"), elapsed.as_nanos() as u64);
        }
        kernel.record_flight(None, EventKind::CustomizeCommit);
        kernel.advance_clock(plan.downtime.charge_ns(report.timings.total()));
        report
    }
}

/// `(stored checkpoint id, logical page bytes it occupies)`.
type CkptIdAndBytes = (dynacut_criu::CkptId, usize);

/// What one promoted replica group cost.
#[derive(Debug, Clone)]
pub struct PromotedReplica {
    /// The group's pids.
    pub pids: Vec<Pid>,
    /// Host wall-clock from this group's freeze to its commit — the
    /// whole downtime a promoted replica experiences. No dump, no
    /// rewrite, no page copy happens inside it, so it is flat in fleet
    /// size.
    pub freeze_window: Duration,
    /// Page bytes the promotion physically copied for this group.
    /// Shared-image promotion installs store frames, so this is 0; the
    /// rollout figure gates on it.
    pub copied_bytes: u64,
}

/// The outcome of a [`DynaCut::rollout`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutDecision {
    /// The canary soaked clean and its image now serves on every
    /// replica.
    Promoted,
    /// A verifier report during the soak rolled the canary back; the
    /// fleet is bit-identical to its pre-attempt state (modulo the
    /// guest clock, which kept serving —
    /// [`Kernel::state_fingerprint_timeless`]).
    Demoted,
}

/// What a [`DynaCut::rollout`] did.
#[derive(Debug, Clone)]
pub struct RolloutReport {
    /// Promote or demote.
    pub decision: RolloutDecision,
    /// The canary group's pids.
    pub canary: Vec<Pid>,
    /// The canary's customize-cycle report — the one real
    /// dump/rewrite/restore the whole fleet paid for. On a demotion
    /// this is the cost of the attempt that was rolled back.
    pub canary_report: CustomizeReport,
    /// Serve slices actually soaked (a demotion stops at the slice the
    /// first report arrived in).
    pub soak_slices: u64,
    /// Falsely-blocked addresses the verifier reported during the soak,
    /// drained selectively — interleaved guest events stay queued.
    pub verifier_reports: Vec<u64>,
    /// SIGTRAP hits on the canary during the soak. Under
    /// [`FaultPolicy::Verify`] every one self-healed and produced a
    /// report.
    pub trap_hits: u64,
    /// Per-group promotion receipts, in promotion order (empty on
    /// demotion).
    pub promoted: Vec<PromotedReplica>,
    /// Page bytes the whole promotion wave physically copied — 0 when
    /// every page came out of the shared store.
    pub promotion_copied_bytes: u64,
    /// Wall-clock duration of the whole rollout, soak included.
    pub wall: Duration,
}

impl DynaCut {
    /// Customizes a fleet the production way: **canary → soak →
    /// promote | demote** (paper §3.2.3's customize-validate-promote,
    /// scaled out).
    ///
    /// Exactly one replica group — `groups[0]`, the canary — runs a
    /// full customize cycle under [`FaultPolicy::Verify`], so every
    /// trap the rewrite planted self-heals and reports instead of
    /// killing the process. The cycle is **held open**: its transaction
    /// journal and committed-restore receipt stay live while the canary
    /// serves for [`RolloutPlan::soak_slices`] slices.
    ///
    /// * **Clean soak** — the canary's stored image is promoted onto
    ///   every remaining group via
    ///   [`CheckpointStore::promote_shared`](dynacut_criu::CheckpointStore::promote_shared):
    ///   one tiny freeze window per replica (serialized, with serve
    ///   slices pumped between), no per-replica re-dump or re-rewrite,
    ///   and zero page bytes copied — every page is a shared frame out
    ///   of the content-addressed store. Only then does the canary
    ///   cycle commit.
    /// * **Any verifier report** (or injected fault) — the canary is
    ///   **demoted** through the PR 2 transaction machinery: the
    ///   committed restore is undone, the just-stored baseline released,
    ///   and the journal rollback thaws/unrepairs/re-marks exactly as a
    ///   failed cycle would. A failure while promoting replica *k*
    ///   first unwinds replicas `0..k`, so the fleet is all-or-nothing.
    ///
    /// # Errors
    ///
    /// Fails with [`DynacutError::BadPlan`] unless the plan uses
    /// [`FaultPolicy::Verify`], the session is incremental, and every
    /// group matches the canary group's size; propagates canary-cycle,
    /// soak and promotion failures after rolling the fleet back to its
    /// pre-attempt state.
    pub fn rollout(
        &mut self,
        kernel: &mut Kernel,
        groups: &[Vec<Pid>],
        plan: &RewritePlan,
        rollout: &RolloutPlan,
    ) -> Result<RolloutReport, DynacutError> {
        plan.validate()?;
        rollout.validate()?;
        if groups.is_empty() {
            return Err(DynacutError::BadPlan(
                "rollout needs at least one replica group".into(),
            ));
        }
        if plan.fault_policy != FaultPolicy::Verify {
            return Err(DynacutError::BadPlan(
                "rollout requires FaultPolicy::Verify: the canary's traps must self-heal \
                 and report, not kill or redirect"
                    .into(),
            ));
        }
        if !self.incremental {
            return Err(DynacutError::BadPlan(
                "rollout requires incremental mode: promotion restores replicas from the \
                 stored canary image"
                    .into(),
            ));
        }
        for group in &groups[1..] {
            if group.len() != groups[0].len() {
                return Err(DynacutError::BadPlan(format!(
                    "every replica group must match the canary group's size ({}), got {}",
                    groups[0].len(),
                    group.len()
                )));
            }
        }
        let started = Instant::now();

        // Stage 1 — the canary cycle: the full stage sequence over
        // groups[0], deliberately *not* committed yet. The canary is
        // live and serving the rewritten image after RestoreCommit, but
        // the journal and the committed-restore receipt stay in hand so
        // a dirty soak can still demote it.
        let mut cycle = self.begin_cycle(&groups[0]);
        cycle.begin(kernel);
        Self::set_group_class(kernel, &cycle.pids, SchedClass::Background);
        for stage in cycle.stage_sequence() {
            if let Err(err) = self.run_stage(kernel, &mut cycle, plan, stage) {
                let CycleState { pids, journal, .. } = cycle;
                self.rollback(kernel, &pids, journal);
                Self::set_group_class(kernel, &pids, SchedClass::Normal);
                return Err(err);
            }
        }
        // The soak is the canary's *validation* serving: it must compete
        // for quanta exactly like the replicas it will be promoted onto,
        // so the background tag comes off before the soak pumps.
        Self::set_group_class(kernel, &cycle.pids, SchedClass::Normal);

        // Stage 2 — soak: pump serve slices and watch the canary. Only
        // verifier-tagged events are drained (the PR 7 selective drain);
        // everything else stays queued for its own consumers.
        let soak_started = start_phase(kernel, Phase::Soak);
        let seq0 = kernel.flight().next_seq();
        let mut reports: Vec<u64> = Vec::new();
        let mut soaked = 0u64;
        let mut soak_fault = None;
        while soaked < rollout.soak_slices {
            if fault::hit(FaultPhase::CanarySoak) {
                soak_fault = Some(DynacutError::FaultInjected(FaultPhase::CanarySoak));
                break;
            }
            kernel.run_for(rollout.serve_slice_ns);
            soaked += 1;
            reports.extend(Self::verifier_reports(kernel));
            if !reports.is_empty() {
                // The first report decides; soaking further only delays
                // the demotion.
                break;
            }
        }
        let trap_hits = kernel
            .flight()
            .since(seq0)
            .filter(|event| {
                matches!(event.kind, EventKind::TrapHit { .. })
                    && event.pid.is_some_and(|pid| cycle.pids.contains(&pid))
            })
            .count() as u64;
        kernel.record_flight(
            None,
            EventKind::PhaseEnd {
                phase: Phase::Soak,
                duration_ns: soak_started.elapsed().as_nanos() as u64,
            },
        );
        kernel
            .flight_mut()
            .metrics_mut()
            .incr("rollout.soak_slices", soaked);

        if soak_fault.is_some() || !reports.is_empty() {
            let canary = cycle.pids.clone();
            let canary_report = cycle.report.clone();
            self.demote_canary(kernel, cycle, reports.len());
            if let Some(err) = soak_fault {
                return Err(err);
            }
            return Ok(RolloutReport {
                decision: RolloutDecision::Demoted,
                canary,
                canary_report,
                soak_slices: soaked,
                verifier_reports: reports,
                trap_hits,
                promoted: Vec::new(),
                promotion_copied_bytes: 0,
                wall: started.elapsed(),
            });
        }

        // Stage 3 — the promotion wave: one tiny freeze window per
        // remaining group, serialized like the fleet engine's windows,
        // with serve slices pumped between. The canary cycle is still
        // open: a failure at replica k unwinds replicas 0..k and then
        // demotes the canary, so the fleet is all-or-nothing.
        let ckpt_id = cycle
            .report
            .checkpoint_id
            .expect("incremental canary cycle stored its baseline");
        let mut promoted: Vec<(Vec<Pid>, CommittedRestore, Duration, u64)> =
            Vec::with_capacity(groups.len() - 1);
        let mut wave_err: Option<DynacutError> = None;
        'wave: for group in &groups[1..] {
            let window_started = Instant::now();
            // Background from the window start until the rollout
            // commits (or this group is unwound): the just-promoted
            // replica's catch-up burst drains under the serving fleet.
            Self::set_group_class(kernel, group, SchedClass::Background);
            kernel.record_flight(None, EventKind::PhaseStart { phase: Phase::Promote });
            for &pid in group.iter() {
                kernel.record_flight(Some(pid), EventKind::StageScheduled { stage: Phase::Promote });
            }
            let mut frozen: Vec<Pid> = Vec::new();
            let mut group_err: Option<DynacutError> = None;
            for &pid in group.iter() {
                match kernel.freeze(pid) {
                    Ok(()) => frozen.push(pid),
                    Err(err) => {
                        group_err = Some(err.into());
                        break;
                    }
                }
            }
            if group_err.is_none() {
                let copied_before = self.store.page_store().copied_bytes();
                let registry = cycle
                    .staged_registry
                    .as_ref()
                    .expect("canary cycle staged its registry");
                match self.store.promote_shared(kernel, ckpt_id, registry, group) {
                    Ok(receipt) => {
                        let copied = self.store.page_store().copied_bytes() - copied_before;
                        let window = window_started.elapsed();
                        for &pid in group.iter() {
                            kernel.record_flight(
                                Some(pid),
                                EventKind::StageRetired {
                                    stage: Phase::Promote,
                                    duration_ns: window.as_nanos() as u64,
                                },
                            );
                        }
                        kernel.record_flight(
                            None,
                            EventKind::PhaseEnd {
                                phase: Phase::Promote,
                                duration_ns: window.as_nanos() as u64,
                            },
                        );
                        promoted.push((group.clone(), receipt, window, copied));
                        kernel.run_for(rollout.serve_slice_ns);
                        continue 'wave;
                    }
                    Err(err) => group_err = Some(err.into()),
                }
            }
            // This group failed before its swap landed: thaw what this
            // window froze. The Promote PhaseStart stays dangling, as a
            // failed stage's bracket always does.
            for &pid in frozen.iter().rev() {
                let _ = kernel.thaw(pid);
                kernel.record_flight(
                    Some(pid),
                    EventKind::RollbackStep {
                        step: RollbackStep::Thaw,
                    },
                );
            }
            Self::set_group_class(kernel, group, SchedClass::Normal);
            wave_err = group_err;
            break;
        }

        if let Some(err) = wave_err {
            // Unwind the already-promoted replicas, newest first: each
            // undo re-inserts the frozen original, which is then thawed
            // back to its pre-freeze scheduler state.
            for (group, receipt, _, _) in promoted.into_iter().rev() {
                kernel.record_flight(
                    None,
                    EventKind::RollbackStep {
                        step: RollbackStep::UndoRestore,
                    },
                );
                receipt.undo(kernel);
                for &pid in group.iter().rev() {
                    let _ = kernel.thaw(pid);
                    kernel.record_flight(
                        Some(pid),
                        EventKind::RollbackStep {
                            step: RollbackStep::Thaw,
                        },
                    );
                }
                Self::set_group_class(kernel, &group, SchedClass::Normal);
            }
            self.demote_canary(kernel, cycle, reports.len());
            return Err(err);
        }

        // Stage 4 — commit. The canary's staged session state folds in
        // exactly as a plain cycle's would; then the promoted replicas
        // get their trap-policy labels (their memory carries the same
        // verify traps the canary's does).
        let canary = cycle.pids.clone();
        let canary_report = self.commit_cycle(kernel, cycle, plan);
        let mut promoted_out = Vec::with_capacity(promoted.len());
        let mut promotion_copied = 0u64;
        for (pids, _receipt, window, copied) in promoted {
            Self::set_group_class(kernel, &pids, SchedClass::Normal);
            for &pid in &pids {
                kernel.flight_mut().set_trap_policy(pid, "verify");
            }
            promotion_copied += copied;
            promoted_out.push(PromotedReplica {
                pids,
                freeze_window: window,
                copied_bytes: copied,
            });
        }
        let replica_procs: usize = promoted_out.iter().map(|group| group.pids.len()).sum();
        kernel.record_flight(
            None,
            EventKind::CanaryPromoted {
                replicas: replica_procs,
                soak_slices: soaked,
            },
        );
        kernel.flight_mut().metrics_mut().incr("rollout.promotions", 1);
        Ok(RolloutReport {
            decision: RolloutDecision::Promoted,
            canary,
            canary_report,
            soak_slices: soaked,
            verifier_reports: reports,
            trap_hits,
            promoted: promoted_out,
            promotion_copied_bytes: promotion_copied,
            wall: started.elapsed(),
        })
    }

    /// Rolls a held-open canary cycle all the way back: undo the
    /// committed restore (the pre-freeze original returns, its soak
    /// divergence discarded with the replacement process), release the
    /// baseline this cycle stored, then run the PR 2 journal rollback —
    /// thaw, unrepair, re-mark dirty bits, restore the displaced
    /// baseline. [`EventKind::CanaryDemoted`] is journalled before the
    /// rollback so `CustomizeRollback` stays the terminal event.
    fn demote_canary(&mut self, kernel: &mut Kernel, mut cycle: CycleState, reports: usize) {
        kernel.record_flight(
            None,
            EventKind::RollbackStep {
                step: RollbackStep::UndoRestore,
            },
        );
        cycle
            .committed
            .take()
            .expect("canary cycle committed its restore before the soak")
            .undo(kernel);
        if let Some(id) = cycle.report.checkpoint_id {
            self.baselines.remove(&cycle.journal.baseline_key);
            self.store
                .release(id)
                .expect("the canary's baseline entry releases cleanly");
        }
        kernel.record_flight(None, EventKind::CanaryDemoted { reports });
        kernel.flight_mut().metrics_mut().incr("rollout.demotions", 1);
        let CycleState { pids, journal, .. } = cycle;
        self.rollback(kernel, &pids, journal);
        Self::set_group_class(kernel, &pids, SchedClass::Normal);
    }
}
