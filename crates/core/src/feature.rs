//! Features: named groups of basic blocks that can be disabled and
//! re-enabled.

use dynacut_analysis::CovGraph;
use dynacut_isa::BasicBlock;
use dynacut_obj::Image;

/// A code feature: a set of module-relative basic blocks, an optional
/// redirect target for unintended accesses, and a name.
///
/// Features are built either from **trace diffs** (paper §3.1,
/// [`Feature::from_cov_graph`]) or **by function name** from the binary's
/// symbol table ([`Feature::from_function`]) when the operator knows which
/// handler implements the feature (the Redis CVE case study, Table 1).
///
/// ```
/// use dynacut::Feature;
/// use dynacut_isa::BasicBlock;
///
/// let feature = Feature::new(
///     "HTTP PUT",
///     "nginx",
///     vec![BasicBlock::new(0x40, 12), BasicBlock::new(0x20, 8)],
/// )
/// .redirect_to_offset(0x100);
/// assert_eq!(feature.entry_block(), Some(BasicBlock::new(0x20, 8)));
/// assert_eq!(feature.code_bytes(), 20);
/// assert_eq!(feature.redirect_to, Some(0x100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Feature {
    /// Human-readable feature name (`"HTTP PUT"`, `"STRALGO"`, …).
    pub name: String,
    /// Module (binary) the blocks live in.
    pub module: String,
    /// Module-relative blocks, sorted by address.
    pub blocks: Vec<BasicBlock>,
    /// Module-relative address of the application's default error handler
    /// to redirect unintended accesses to (e.g. the `403 Forbidden`
    /// response path). `None` means terminate-on-access.
    pub redirect_to: Option<u64>,
}

impl Feature {
    /// Creates a feature from explicit blocks.
    pub fn new(name: &str, module: &str, mut blocks: Vec<BasicBlock>) -> Self {
        blocks.sort();
        blocks.dedup();
        Feature {
            name: name.to_owned(),
            module: module.to_owned(),
            blocks,
            redirect_to: None,
        }
    }

    /// Builds a feature from a coverage-graph diff (the `tracediff`
    /// output), keeping only blocks of `module`.
    pub fn from_cov_graph(name: &str, module: &str, graph: &CovGraph) -> Self {
        let blocks = graph
            .module_blocks(module)
            .into_iter()
            .map(|(offset, size)| BasicBlock::new(offset, size))
            .collect();
        Feature::new(name, module, blocks)
    }

    /// Builds a feature from every basic block of a named function in the
    /// binary.
    pub fn from_function(name: &str, image: &Image, function: &str) -> Option<Self> {
        let blocks = image.blocks_of_function(function);
        if blocks.is_empty() {
            return None;
        }
        Some(Feature::new(name, &image.name, blocks))
    }

    /// Sets the redirect target to the entry of a named function (e.g.
    /// the server's error-response path) and returns the feature.
    pub fn redirect_to_function(mut self, image: &Image, function: &str) -> Option<Self> {
        let def = image.symbols.get(function)?;
        self.redirect_to = Some(def.offset);
        Some(self)
    }

    /// Sets an explicit module-relative redirect target.
    pub fn redirect_to_offset(mut self, offset: u64) -> Self {
        self.redirect_to = Some(offset);
        self
    }

    /// Extends the feature with the PLT stubs its code calls, so that
    /// disabling/re-enabling the feature carries its outgoing linkage
    /// along. Without this, shedding "all unused code" while a feature is
    /// blocked can strand the feature's PLT stubs, and a later re-enable
    /// would restore the handler but not its calls.
    pub fn with_plt_dependencies(mut self, image: &Image) -> Self {
        let mut extra = Vec::new();
        for block in &self.blocks {
            let start = block.addr as usize;
            let end = (start + block.size as usize).min(image.text.len());
            if start >= end {
                continue;
            }
            for item in dynacut_isa::disasm(&image.text[start..end]) {
                let Ok((offset, insn)) = item else { break };
                if let Some(disp) = insn.rel_target() {
                    let next = block.addr + offset as u64 + insn.len() as u64;
                    let target = next.wrapping_add_signed(i64::from(disp));
                    let is_plt = image.plt.iter().any(|entry| entry.stub_offset == target);
                    if is_plt {
                        if let Some(stub) = image.block_containing(target) {
                            extra.push(stub);
                        }
                    }
                }
            }
        }
        self.blocks.extend(extra);
        self.blocks.sort();
        self.blocks.dedup();
        self
    }

    /// The entry block — the first (lowest-address) block, whose first
    /// byte is what the entry-blocking policy overwrites.
    pub fn entry_block(&self) -> Option<BasicBlock> {
        self.blocks.first().copied()
    }

    /// Total bytes covered by the feature's blocks.
    pub fn code_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.size)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynacut_analysis::BlockKey;

    #[test]
    fn blocks_are_sorted_and_deduplicated() {
        let feature = Feature::new(
            "f",
            "app",
            vec![
                BasicBlock::new(0x20, 4),
                BasicBlock::new(0x10, 8),
                BasicBlock::new(0x20, 4),
            ],
        );
        assert_eq!(
            feature.blocks,
            vec![BasicBlock::new(0x10, 8), BasicBlock::new(0x20, 4)]
        );
        assert_eq!(feature.entry_block(), Some(BasicBlock::new(0x10, 8)));
        assert_eq!(feature.code_bytes(), 12);
    }

    #[test]
    fn from_cov_graph_filters_module() {
        let mut graph = CovGraph::new();
        graph.insert(BlockKey {
            module: "app".into(),
            offset: 0x40,
            size: 6,
        });
        graph.insert(BlockKey {
            module: "libc".into(),
            offset: 0x0,
            size: 4,
        });
        let feature = Feature::from_cov_graph("put", "app", &graph);
        assert_eq!(feature.blocks, vec![BasicBlock::new(0x40, 6)]);
    }

    #[test]
    fn empty_feature_has_no_entry() {
        let feature = Feature::new("empty", "app", vec![]);
        assert_eq!(feature.entry_block(), None);
        assert_eq!(feature.code_bytes(), 0);
    }
}
