//! Static-debloating baselines (RAZOR-like and Chisel-like) used as the
//! comparison lines in the paper's Figure 10.
//!
//! These are one-shot, trace-driven debloaters: they take a vanilla
//! binary plus training coverage and decide, **once**, which basic blocks
//! stay in the shipped binary. Unlike DynaCut they cannot change that set
//! as the program moves between execution phases — which is exactly the
//! gap Figure 10 visualises.

use dynacut_analysis::CovGraph;
use dynacut_isa::BasicBlock;
use dynacut_obj::Image;
use std::collections::BTreeSet;

/// The result of a static debloating pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticDebloat {
    /// Tool name (`"RAZOR"` / `"CHISEL"`).
    pub tool: String,
    /// Blocks kept in the shipped binary (module-relative).
    pub kept: BTreeSet<BasicBlock>,
    /// Total blocks in the vanilla binary.
    pub total_blocks: usize,
}

impl StaticDebloat {
    /// Fraction of the vanilla binary's blocks still live, `0.0..=1.0` —
    /// constant over the program's lifetime for a static tool.
    pub fn live_fraction(&self) -> f64 {
        if self.total_blocks == 0 {
            return 0.0;
        }
        self.kept.len() as f64 / self.total_blocks as f64
    }

    /// Blocks removed.
    pub fn removed(&self) -> usize {
        self.total_blocks - self.kept.len()
    }

    /// Whether a block survived debloating.
    pub fn keeps(&self, block: &BasicBlock) -> bool {
        self.kept.contains(block)
    }
}

fn executed_blocks(image: &Image, module: &str, training: &CovGraph) -> BTreeSet<BasicBlock> {
    let _ = image;
    training
        .module_blocks(module)
        .into_iter()
        .map(|(offset, size)| BasicBlock::new(offset, size))
        .collect()
}

/// A RAZOR-like debloater: keeps every block executed by the training
/// inputs **plus related-code heuristics** — RAZOR expands the kept set
/// along likely control flows so that inputs similar to (but not in) the
/// training set still work. Our heuristic keeps every block of any
/// function that executed at least once, which reproduces RAZOR's
/// conservative-keep behaviour (the paper reports RAZOR removing ~53.1 %
/// of blocks on average vs Chisel's 66 %).
pub fn razor_debloat(image: &Image, module: &str, training: &CovGraph) -> StaticDebloat {
    let executed = executed_blocks(image, module, training);
    let mut kept = executed.clone();
    for func in &image.functions {
        let touched = executed
            .iter()
            .any(|b| b.addr >= func.offset && b.addr < func.offset + func.size);
        if touched {
            kept.extend(image.blocks_of_function(&func.name));
        }
    }
    StaticDebloat {
        tool: "RAZOR".to_owned(),
        kept,
        total_blocks: image.total_blocks(),
    }
}

/// A Chisel-like debloater: aggressively keeps **only** the exactly
/// executed blocks (Chisel's reinforcement-learning search converges on a
/// minimal program reproducing the training behaviour).
pub fn chisel_debloat(image: &Image, module: &str, training: &CovGraph) -> StaticDebloat {
    StaticDebloat {
        tool: "CHISEL".to_owned(),
        kept: executed_blocks(image, module, training),
        total_blocks: image.total_blocks(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynacut_analysis::BlockKey;
    use dynacut_isa::{Assembler, Insn, Reg};
    use dynacut_obj::{ModuleBuilder, ObjectKind};

    fn two_function_image() -> Image {
        let mut asm = Assembler::new();
        asm.func("used");
        asm.push(Insn::Movi(Reg::R0, 1));
        asm.push(Insn::Ret);
        asm.label("used_tail");
        asm.push(Insn::Ret);
        asm.func("unused");
        asm.push(Insn::Ret);
        asm.func("_start");
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("app", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.entry("_start");
        builder.link(&[]).unwrap()
    }

    fn training_for(image: &Image, function: &str) -> CovGraph {
        let mut graph = CovGraph::new();
        // Execute only the first block of the function.
        let block = image.blocks_of_function(function)[0];
        graph.insert(BlockKey {
            module: "app".into(),
            offset: block.addr,
            size: block.size,
        });
        graph
    }

    #[test]
    fn chisel_keeps_only_executed() {
        let image = two_function_image();
        let training = training_for(&image, "used");
        let debloat = chisel_debloat(&image, "app", &training);
        assert_eq!(debloat.kept.len(), 1);
        assert!(debloat.removed() > 0);
    }

    #[test]
    fn razor_keeps_whole_touched_function() {
        let image = two_function_image();
        let training = training_for(&image, "used");
        let razor = razor_debloat(&image, "app", &training);
        let chisel = chisel_debloat(&image, "app", &training);
        // RAZOR keeps the `used_tail` block too.
        assert!(razor.kept.len() > chisel.kept.len());
        // But not the unused function.
        for block in image.blocks_of_function("unused") {
            assert!(!razor.keeps(&block));
        }
        // RAZOR removes less than Chisel, like the paper's 53.1% vs 66%.
        assert!(razor.removed() < chisel.removed());
    }

    #[test]
    fn live_fraction_is_bounded() {
        let image = two_function_image();
        let training = training_for(&image, "used");
        for debloat in [
            razor_debloat(&image, "app", &training),
            chisel_debloat(&image, "app", &training),
        ] {
            let fraction = debloat.live_fraction();
            assert!((0.0..=1.0).contains(&fraction));
        }
    }

    #[test]
    fn empty_training_keeps_nothing() {
        let image = two_function_image();
        let debloat = chisel_debloat(&image, "app", &CovGraph::new());
        assert_eq!(debloat.kept.len(), 0);
        assert_eq!(debloat.live_fraction(), 0.0);
    }
}
