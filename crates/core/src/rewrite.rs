//! Image-level rewriting: disabling, wiping, unmapping and restoring
//! basic blocks.
//!
//! # Block-cache invalidation contract
//!
//! Every function here edits a [`ProcessImage`], never live kernel
//! memory — rewrites reach a running process only through the restore
//! swap (`RestoreTransaction::commit`), which starts the replacement
//! with a cold decoded-block translation cache. The engine's customize
//! commit then carries the *original's* cache forward under a bumped
//! rewrite epoch, seeding the generation of every page an edit here
//! touched past any carried snapshot, so a carried block over rewritten
//! bytes can never validate (DESIGN §11). Host-side patches that *do*
//! touch live memory (e.g. via `write_unchecked`) are covered
//! separately by the per-page generation counters in the VM. Either
//! way, no cached block can hide a freshly planted `int3`, a wiped
//! block, or a re-enabled byte.

use crate::original::OriginalText;
use crate::plan::BlockPolicy;
use crate::{DynacutError, Feature};
use dynacut_criu::{ModuleRegistry, ProcessImage};
use dynacut_isa::{coalesce_blocks, BasicBlock, TRAP_OPCODE};
use dynacut_obj::{Perms, PAGE_SIZE};

/// What a disable operation did, and what the fault handler needs to
/// know about it.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DisableOutcome {
    /// Bytes overwritten with `int3`.
    pub bytes_written: u64,
    /// Whole pages unmapped.
    pub pages_unmapped: u64,
    /// `(blocked absolute address, redirect absolute address)` pairs for
    /// the fault-handler table.
    pub redirects: Vec<(u64, u64)>,
    /// `(absolute address, original byte)` pairs for the verifier table.
    pub originals: Vec<(u64, u8)>,
    /// Number of blocks affected.
    pub blocks: usize,
}

impl DisableOutcome {
    fn absorb(&mut self, other: DisableOutcome) {
        self.bytes_written += other.bytes_written;
        self.pages_unmapped += other.pages_unmapped;
        self.redirects.extend(other.redirects);
        self.originals.extend(other.originals);
        self.blocks += other.blocks;
    }
}

fn module_base(image: &ProcessImage, module: &str) -> Result<u64, DynacutError> {
    image
        .core
        .modules
        .iter()
        .find(|m| m.name == module)
        .map(|m| m.base)
        .ok_or_else(|| DynacutError::UnknownModule(module.to_owned()))
}

/// Disables a feature in the image according to `policy` (paper §3.2.2).
///
/// # Errors
///
/// Fails if the module is unknown or blocks fall outside mapped memory.
pub fn disable_in_image(
    image: &mut ProcessImage,
    feature: &Feature,
    policy: BlockPolicy,
) -> Result<DisableOutcome, DynacutError> {
    let base = module_base(image, &feature.module)?;
    let redirect_abs = feature.redirect_to.map(|offset| base + offset);
    let mut outcome = DisableOutcome::default();

    let record_block_entry = |outcome: &mut DisableOutcome, image: &ProcessImage, addr: u64| {
        if let Some(to) = redirect_abs {
            outcome.redirects.push((addr, to));
        }
        if let Ok(orig) = image.read_mem(addr, 1) {
            outcome.originals.push((addr, orig[0]));
        }
    };

    match policy {
        BlockPolicy::EntryByte => {
            // "placing an int3 instruction in the first byte of the first
            // basic block executed in this list".
            let Some(entry) = feature.entry_block() else {
                return Ok(outcome);
            };
            let addr = base + entry.addr;
            record_block_entry(&mut outcome, image, addr);
            image.write_mem(addr, &[TRAP_OPCODE])?;
            outcome.bytes_written += 1;
            outcome.blocks = feature.blocks.len();
        }
        BlockPolicy::WipeBlocks => {
            for block in &feature.blocks {
                let addr = base + block.addr;
                record_block_entry(&mut outcome, image, addr);
                // Capture every original byte so the verifier can heal any
                // mid-block landing.
                if let Ok(orig) = image.read_mem(addr, block.size as usize) {
                    for (index, byte) in orig.iter().enumerate().skip(1) {
                        outcome.originals.push((addr + index as u64, *byte));
                    }
                }
                image.fill_mem(addr, block.size as usize, TRAP_OPCODE)?;
                outcome.bytes_written += u64::from(block.size);
            }
            outcome.blocks = feature.blocks.len();
        }
        BlockPolicy::UnmapPages => {
            let ranges = coalesce_blocks(&feature.blocks);
            for range in &ranges {
                let abs = (base + range.start)..(base + range.end);
                // Pages entirely inside the range are unmapped; the
                // partial head/tail bytes are wiped.
                let first_full = abs.start.div_ceil(PAGE_SIZE) * PAGE_SIZE;
                let last_full = (abs.end / PAGE_SIZE) * PAGE_SIZE;
                if first_full < last_full {
                    image.unmap_range(first_full, last_full)?;
                    outcome.pages_unmapped += (last_full - first_full) / PAGE_SIZE;
                }
                let head = abs.start..first_full.min(abs.end);
                let tail = last_full.max(abs.start)..abs.end;
                for part in [head, tail] {
                    if part.start < part.end && image.mm.vma_at(part.start).is_some() {
                        image.fill_mem(part.start, (part.end - part.start) as usize, TRAP_OPCODE)?;
                        outcome.bytes_written += part.end - part.start;
                    }
                }
            }
            for block in &feature.blocks {
                let addr = base + block.addr;
                if image.mm.vma_at(addr).is_some() {
                    record_block_entry(&mut outcome, image, addr);
                }
            }
            outcome.blocks = feature.blocks.len();
        }
    }
    Ok(outcome)
}

/// Re-enables a feature by restoring the original instruction bytes (and
/// re-mapping any pages a previous unmap removed).
///
/// # Errors
///
/// Fails if the module is unknown to the registry.
pub fn enable_in_image(
    image: &mut ProcessImage,
    feature: &Feature,
    registry: &ModuleRegistry,
    original: &mut OriginalText,
) -> Result<u64, DynacutError> {
    let base = module_base(image, &feature.module)?;
    let mut restored = 0u64;

    // Re-map any missing pages first, restoring their full original
    // content.
    let ranges = coalesce_blocks(&feature.blocks);
    for range in &ranges {
        let abs_start = (base + range.start) & !(PAGE_SIZE - 1);
        let abs_end = (base + range.end).div_ceil(PAGE_SIZE) * PAGE_SIZE;
        let mut page = abs_start;
        while page < abs_end {
            if image.mm.vma_at(page).is_none() {
                image
                    .add_vma(page, PAGE_SIZE, Perms::RX, &format!("{}.text", feature.module))
                    .map_err(DynacutError::Criu)?;
                let offset = page - base;
                let bytes = original.bytes(image, registry, &feature.module, offset, PAGE_SIZE as usize);
                // The page may extend past the text end; clamp gracefully.
                let bytes = match bytes {
                    Ok(bytes) => bytes,
                    Err(_) => {
                        let text_len = registry
                            .get(&feature.module)
                            .map(|b| b.text.len() as u64)
                            .unwrap_or(0);
                        let avail = text_len.saturating_sub(offset) as usize;
                        original.bytes(image, registry, &feature.module, offset, avail)?
                    }
                };
                image.write_mem(page, &bytes)?;
                restored += bytes.len() as u64;
            }
            page += PAGE_SIZE;
        }
    }

    // Restore the block bytes themselves.
    for block in &feature.blocks {
        let bytes = original.bytes(image, registry, &feature.module, block.addr, block.size as usize)?;
        image.write_mem(base + block.addr, &bytes)?;
        restored += u64::from(block.size);
    }
    Ok(restored)
}

/// Removes arbitrary (e.g. initialization-only) blocks from a module —
/// the Figure 7/9 operation. Equivalent to disabling an anonymous feature
/// with no redirect.
///
/// # Errors
///
/// Fails if the module is unknown or blocks are out of range.
pub fn remove_blocks_in_image(
    image: &mut ProcessImage,
    module: &str,
    blocks: &[BasicBlock],
    policy: BlockPolicy,
) -> Result<DisableOutcome, DynacutError> {
    // Init-code removal replaces *all* the listed blocks' instructions,
    // not just entries ("the overhead of initialization code removal is
    // mainly due to replacing all unused basic block instructions",
    // §4.1); honour EntryByte by upgrading it to WipeBlocks semantics
    // per block.
    let effective = match policy {
        BlockPolicy::EntryByte => BlockPolicy::WipeBlocks,
        other => other,
    };
    let feature = Feature::new("<init>", module, blocks.to_vec());
    let mut outcome = DisableOutcome::default();
    outcome.absorb(disable_in_image(image, &feature, effective)?);
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disable_outcome_absorb_accumulates() {
        let mut a = DisableOutcome {
            bytes_written: 1,
            pages_unmapped: 0,
            redirects: vec![(1, 2)],
            originals: vec![(1, 0x90)],
            blocks: 1,
        };
        let b = DisableOutcome {
            bytes_written: 4,
            pages_unmapped: 2,
            redirects: vec![(3, 4)],
            originals: vec![],
            blocks: 2,
        };
        a.absorb(b);
        assert_eq!(a.bytes_written, 5);
        assert_eq!(a.pages_unmapped, 2);
        assert_eq!(a.redirects.len(), 2);
        assert_eq!(a.blocks, 3);
    }
}
