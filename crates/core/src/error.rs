//! Error type for the DynaCut framework.

use std::error::Error;
use std::fmt;

/// Errors raised while customizing a process.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DynacutError {
    /// A checkpoint/restore or image-editing failure.
    Criu(dynacut_criu::CriuError),
    /// A kernel operation failed.
    Vm(dynacut_vm::VmError),
    /// A feature references a module not mapped in the target process.
    UnknownModule(String),
    /// A feature's blocks fall outside the module's text.
    BlockOutOfRange {
        /// The feature being applied.
        feature: String,
        /// The offending module-relative offset.
        offset: u64,
    },
    /// Building or linking the fault-handler library failed.
    Handler(dynacut_obj::ObjError),
    /// The plan is contradictory (e.g. the same block disabled and
    /// enabled).
    BadPlan(String),
    /// `allow_syscalls` names a syscall number the per-process filter
    /// bitmask cannot represent (≥ [`dynacut_vm::SYSCALL_FILTER_BITS`]).
    SyscallOutOfRange(u64),
    /// An armed test fault fired at this phase of the customize cycle
    /// (see [`dynacut_vm::fault`]); only possible under the
    /// `fault-injection` feature.
    FaultInjected(dynacut_vm::fault::FaultPhase),
    /// The coverage tracer rejected an operation (e.g. a block offset or
    /// module count beyond the drcov field widths).
    Trace(dynacut_trace::TraceError),
}

impl DynacutError {
    /// The phase an armed test fault fired at, if this error came from
    /// one — whether it fired in this crate or inside the checkpoint
    /// layer. `None` for real errors.
    pub fn injected_phase(&self) -> Option<dynacut_vm::fault::FaultPhase> {
        match self {
            DynacutError::FaultInjected(phase) => Some(*phase),
            DynacutError::Criu(dynacut_criu::CriuError::FaultInjected(phase)) => Some(*phase),
            _ => None,
        }
    }
}

impl fmt::Display for DynacutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DynacutError::Criu(err) => write!(f, "checkpoint error: {err}"),
            DynacutError::Vm(err) => write!(f, "kernel error: {err}"),
            DynacutError::UnknownModule(name) => {
                write!(f, "module `{name}` is not mapped in the target process")
            }
            DynacutError::BlockOutOfRange { feature, offset } => {
                write!(f, "feature `{feature}` block at {offset:#x} is outside the module text")
            }
            DynacutError::Handler(err) => write!(f, "fault-handler build error: {err}"),
            DynacutError::BadPlan(reason) => write!(f, "bad rewrite plan: {reason}"),
            DynacutError::SyscallOutOfRange(sysno) => write!(
                f,
                "syscall number {sysno} cannot be allowed: the filter bitmask holds {} bits",
                dynacut_vm::SYSCALL_FILTER_BITS
            ),
            DynacutError::FaultInjected(phase) => {
                write!(f, "injected fault fired at phase `{phase}`")
            }
            DynacutError::Trace(err) => write!(f, "trace error: {err}"),
        }
    }
}

impl Error for DynacutError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DynacutError::Criu(err) => Some(err),
            DynacutError::Vm(err) => Some(err),
            DynacutError::Handler(err) => Some(err),
            DynacutError::Trace(err) => Some(err),
            _ => None,
        }
    }
}

impl From<dynacut_criu::CriuError> for DynacutError {
    fn from(err: dynacut_criu::CriuError) -> Self {
        DynacutError::Criu(err)
    }
}

impl From<dynacut_vm::VmError> for DynacutError {
    fn from(err: dynacut_vm::VmError) -> Self {
        DynacutError::Vm(err)
    }
}

impl From<dynacut_obj::ObjError> for DynacutError {
    fn from(err: dynacut_obj::ObjError) -> Self {
        DynacutError::Handler(err)
    }
}

impl From<dynacut_trace::TraceError> for DynacutError {
    fn from(err: dynacut_trace::TraceError) -> Self {
        DynacutError::Trace(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        let samples = [
            DynacutError::UnknownModule("nginx".into()),
            DynacutError::BlockOutOfRange {
                feature: "PUT".into(),
                offset: 0x999,
            },
            DynacutError::BadPlan("overlap".into()),
        ];
        for err in samples {
            assert!(!err.to_string().is_empty());
        }
    }
}
