//! Exhaustive error-path suite for transactional customize (DESIGN §5).
//!
//! Every phase of the customize cycle — pre-dump, dump, image edit,
//! library injection, restore handle resolution, restore build, CoW
//! frame materialization, restore commit, baseline store and
//! mark-clean — is failed on demand via [`dynacut_vm::fault`] against
//! both a single-process guest (Redis) and a multi-process guest (Nginx
//! master + worker). Each case asserts the transactional contract:
//!
//! 1. the failed `customize` returns the injected phase as a typed error,
//! 2. the kernel is left **bit-identical** to its pre-attempt state
//!    ([`Kernel::state_fingerprint`] equality: processes alive and
//!    thawed, memory, TCP, signal and dirty-bitmap state intact),
//! 3. the established client connection keeps serving, and
//! 4. retrying the identical plan succeeds and takes effect.
//!
//! Only built with `--features fault-injection`; the hooks compile to a
//! constant `false` otherwise.
#![cfg(feature = "fault-injection")]

use dynacut::{
    Downtime, DynaCut, EventKind, FaultPolicy, Feature, Phase, RewritePlan, RollbackStep,
    RolloutDecision, RolloutPlan, VERIFIER_EVENT_BIT,
};
use dynacut_apps::{libc::guest_libc, nginx, redis, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_vm::fault::{self, FaultPhase};
use dynacut_vm::{Kernel, LoadSpec, Pid, ProcState};
use std::sync::Arc;

/// Every injection point in the customize cycle, in execution order.
/// The default restore is zero-copy, so `RestoreHandles` (handle
/// resolution and interning) and `CowMaterialize` (frame installation)
/// bracket the per-process `RestoreBuild`.
const ALL_PHASES: [FaultPhase; 10] = [
    FaultPhase::PreDump,
    FaultPhase::Dump,
    FaultPhase::ImageEdit,
    FaultPhase::LibraryInjection,
    FaultPhase::RestoreHandles,
    FaultPhase::RestoreBuild,
    FaultPhase::CowMaterialize,
    FaultPhase::RestoreCommit,
    FaultPhase::BaselineStore,
    FaultPhase::MarkClean,
];

/// Phases whose hook fires once **per process**, so `skip = 1` targets
/// the second process (the Nginx worker) after the first succeeded.
const PER_PROCESS_PHASES: [FaultPhase; 7] = [
    FaultPhase::Dump,
    FaultPhase::ImageEdit,
    FaultPhase::LibraryInjection,
    FaultPhase::RestoreHandles,
    FaultPhase::RestoreBuild,
    FaultPhase::CowMaterialize,
    FaultPhase::RestoreCommit,
];

struct Server {
    kernel: Kernel,
    pids: Vec<Pid>,
    exe: Arc<dynacut_obj::Image>,
    registry: ModuleRegistry,
}

fn boot(
    image: fn(&dynacut_obj::Image) -> dynacut_obj::Image,
    config: (&str, Vec<u8>),
) -> Server {
    let libc = guest_libc();
    let exe = image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(config.0, &config.1);
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    kernel.spawn(&spec).unwrap();
    kernel.run_until_event(EVENT_READY, 100_000_000).expect("boot");
    let pids = kernel.pids();
    Server {
        kernel,
        pids,
        exe,
        registry,
    }
}

fn boot_nginx() -> Server {
    boot(nginx::image, (nginx::CONFIG_PATH, nginx::config_file()))
}

fn boot_redis() -> Server {
    boot(redis::image, (redis::CONFIG_PATH, redis::config_file()))
}

/// Disable Nginx's PUT handler with redirect-to-403.
fn nginx_plan(server: &Server) -> RewritePlan {
    let put = Feature::from_function("HTTP PUT", &server.exe, "ngx_put_handler")
        .unwrap()
        .redirect_to_function(&server.exe, nginx::ERROR_HANDLER)
        .unwrap();
    RewritePlan::new()
        .disable(put)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None)
}

/// Block Redis's vulnerable SETRANGE command with redirect-to-error.
fn redis_plan(server: &Server) -> RewritePlan {
    let setrange = Feature::from_function("SETRANGE", &server.exe, "rd_cmd_setrange")
        .unwrap()
        .redirect_to_function(&server.exe, redis::ERROR_HANDLER)
        .unwrap();
    RewritePlan::new()
        .disable(setrange)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None)
}

/// The flight-recorder phase a fault injected at `phase` dies inside
/// (the journal's dangling `PhaseStart`). `MarkClean` fires within the
/// baseline-store bracket, so both map to [`Phase::BaselineStore`].
fn flight_phase(phase: FaultPhase) -> Phase {
    match phase {
        FaultPhase::PreDump => Phase::PreDump,
        FaultPhase::Dump => Phase::Dump,
        FaultPhase::ImageEdit => Phase::ImageEdit,
        FaultPhase::LibraryInjection => Phase::Inject,
        FaultPhase::RestoreHandles | FaultPhase::RestoreBuild | FaultPhase::CowMaterialize => {
            Phase::RestorePrepare
        }
        FaultPhase::RestoreCommit => Phase::RestoreCommit,
        FaultPhase::BaselineStore | FaultPhase::MarkClean => Phase::BaselineStore,
        other => panic!("unmapped fault phase {other}"),
    }
}

/// Asserts the flight journal recorded the failed cycle faithfully:
/// begin marker, matched start/end pairs for every phase that completed,
/// exactly one dangling `PhaseStart` naming the phase the cycle died in,
/// the expected rollback steps, and a terminal `CustomizeRollback` with
/// no commit in between.
fn assert_failed_cycle_journal(
    kernel: &Kernel,
    seq0: u64,
    died_in: Phase,
    pids: &[Pid],
    ctx: &str,
) {
    let events: Vec<_> = kernel.flight().since(seq0).collect();
    assert!(
        matches!(
            events.first().map(|e| &e.kind),
            Some(EventKind::CustomizeBegin { pids: n }) if *n == pids.len()
        ),
        "journal opens with CustomizeBegin ({ctx})"
    );
    assert!(
        matches!(events.last().map(|e| &e.kind), Some(EventKind::CustomizeRollback)),
        "journal ends with CustomizeRollback ({ctx})"
    );
    assert!(
        !events.iter().any(|e| matches!(e.kind, EventKind::CustomizeCommit)),
        "a failed cycle must not journal a commit ({ctx})"
    );

    let starts: Vec<Phase> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::PhaseStart { phase } => Some(phase),
            _ => None,
        })
        .collect();
    let ends: Vec<Phase> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::PhaseEnd { phase, .. } => Some(phase),
            _ => None,
        })
        .collect();
    assert_eq!(
        starts.len(),
        ends.len() + 1,
        "exactly one phase is left dangling ({ctx})"
    );
    let dangling: Vec<Phase> = starts
        .iter()
        .filter(|phase| !ends.contains(phase))
        .copied()
        .collect();
    assert_eq!(
        dangling,
        vec![died_in],
        "the dangling PhaseStart names the phase the cycle died in ({ctx})"
    );

    let steps: Vec<RollbackStep> = events
        .iter()
        .filter_map(|e| match e.kind {
            EventKind::RollbackStep { step } => Some(step),
            _ => None,
        })
        .collect();
    assert!(
        !steps.is_empty(),
        "rollback steps are journalled for every injected phase ({ctx})"
    );
    assert!(
        steps.contains(&RollbackStep::Unrepair),
        "connections are taken out of repair mode ({ctx})"
    );
    // The incremental pre-dump snapshots every pid's dirty bits before
    // anything can fail, so the rollback re-marks them in every case.
    assert_eq!(
        steps.iter().filter(|s| **s == RollbackStep::RestoreDirtyBits).count(),
        pids.len(),
        "dirty bits restored per pid ({ctx})"
    );
    if died_in == Phase::PreDump {
        assert!(
            !steps.contains(&RollbackStep::Thaw),
            "nothing was frozen before a pre-dump failure ({ctx})"
        );
    } else {
        assert_eq!(
            steps.iter().filter(|s| **s == RollbackStep::Thaw).count(),
            pids.len(),
            "every frozen pid is thawed ({ctx})"
        );
    }
    if died_in == Phase::BaselineStore {
        assert!(
            steps.contains(&RollbackStep::UndoRestore),
            "a post-commit failure journals the restore undo ({ctx})"
        );
    }
}

/// Drives one armed phase against a live guest and asserts the
/// transactional contract end to end: typed error, bit-identical
/// kernel-state rollback, surviving connection, successful retry.
///
/// `probe` is a benign request that must answer identically before the
/// attempt, after the rollback, and after the successful retry; `proof`
/// is a request whose reply flips once the customization commits.
#[allow(clippy::too_many_arguments)]
fn assert_rollback_then_retry(
    mut server: Server,
    plan: &RewritePlan,
    port: u16,
    probe: (&[u8], &[u8]),
    proof: (&[u8], &[u8]),
    phase: FaultPhase,
    skip: usize,
) {
    let ctx = format!("phase {phase}, skip {skip}");
    let mut dynacut = DynaCut::new(server.registry.clone()).with_incremental();
    let conn = server.kernel.client_connect(port).unwrap();
    assert_eq!(
        server.kernel.client_request(conn, probe.0, 5_000_000).unwrap(),
        probe.1,
        "guest serves before the attempt ({ctx})"
    );

    let pristine = server.kernel.state_fingerprint();
    let rollbacks_before = server.kernel.flight().metrics().counter("customize.rollbacks");
    let seq0 = server.kernel.flight().next_seq();
    fault::arm(phase, skip);
    let err = dynacut
        .customize(&mut server.kernel, &server.pids, plan)
        .expect_err("armed customize must fail");
    assert_eq!(
        err.injected_phase(),
        Some(phase),
        "error names the injected phase, got `{err}` ({ctx})"
    );
    assert_eq!(fault::armed_count(), 0, "the armed fault was consumed ({ctx})");

    // The tentpole invariant: the kernel rolled back to exactly the
    // pre-customization state — processes alive and thawed, memory, TCP,
    // sigaction and dirty-bitmap state bit-identical.
    assert_eq!(
        server.kernel.state_fingerprint(),
        pristine,
        "kernel state must roll back exactly ({ctx})"
    );
    for &pid in &server.pids {
        assert!(server.kernel.exit_status(pid).is_none(), "{pid} alive ({ctx})");
        assert_ne!(
            server.kernel.process(pid).unwrap().state,
            ProcState::Frozen,
            "{pid} thawed ({ctx})"
        );
    }

    // Zero leaked `SharedPages` refs: the aborted handle-based restore
    // interned its payload and must have released every reference on
    // the error path, so the store's refcount-derived footprint still
    // equals the sum over stored checkpoints.
    assert_eq!(
        dynacut.store().logical_pages_bytes(),
        dynacut.store().stored_pages_bytes(),
        "no leaked page refs after rollback ({ctx})"
    );

    // The flight journal is the observable record of the failure: it
    // must name the phase the cycle died in and every rollback step.
    assert_failed_cycle_journal(&server.kernel, seq0, flight_phase(phase), &server.pids, &ctx);
    assert_eq!(
        server.kernel.flight().metrics().counter("customize.rollbacks"),
        rollbacks_before + 1,
        "rollback counter incremented ({ctx})"
    );

    // The pre-existing connection survived the aborted attempt (TCP
    // repair mode was left again) and the feature is still enabled.
    assert_eq!(
        server.kernel.client_request(conn, probe.0, 5_000_000).unwrap(),
        probe.1,
        "established connection still serves after rollback ({ctx})"
    );

    // Success implies the whole multi-process restore committed: the
    // identical plan goes through cleanly on the retry and takes effect.
    let seq1 = server.kernel.flight().next_seq();
    dynacut
        .customize(&mut server.kernel, &server.pids, plan)
        .unwrap_or_else(|err| panic!("retry after rollback must succeed ({ctx}): {err}"));
    let retry: Vec<_> = server.kernel.flight().since(seq1).collect();
    assert!(
        retry.iter().any(|e| matches!(e.kind, EventKind::CustomizeCommit)),
        "retry journals a commit ({ctx})"
    );
    assert!(
        !retry.iter().any(|e| matches!(
            e.kind,
            EventKind::CustomizeRollback | EventKind::RollbackStep { .. }
        )),
        "clean retry journals no rollback ({ctx})"
    );
    let retry_starts = retry
        .iter()
        .filter(|e| matches!(e.kind, EventKind::PhaseStart { .. }))
        .count();
    let retry_ends = retry
        .iter()
        .filter(|e| matches!(e.kind, EventKind::PhaseEnd { .. }))
        .count();
    assert_eq!(retry_starts, retry_ends, "no dangling phase on success ({ctx})");
    let flight = server.kernel.flight();
    assert_eq!(
        flight.next_seq(),
        flight.len() as u64 + flight.dropped(),
        "recorder accounting: recorded == held + dropped ({ctx})"
    );
    assert_eq!(
        server.kernel.client_request(conn, proof.0, 5_000_000).unwrap(),
        proof.1,
        "customization applies on the retry ({ctx})"
    );
    assert_eq!(
        server.kernel.client_request(conn, probe.0, 5_000_000).unwrap(),
        probe.1,
        "benign traffic unaffected after the retry ({ctx})"
    );
    for &pid in &server.pids {
        assert!(server.kernel.exit_status(pid).is_none(), "{pid} alive after retry ({ctx})");
    }
    assert_eq!(
        dynacut.store().logical_pages_bytes(),
        dynacut.store().stored_pages_bytes(),
        "no leaked page refs after the successful retry either ({ctx})"
    );
}

const NGINX_PROBE: (&[u8], &[u8]) = (b"GET /i.html\n", nginx::RESP_200);
const NGINX_PROOF: (&[u8], &[u8]) = (b"PUT /f data", nginx::RESP_403);
const REDIS_PROBE: (&[u8], &[u8]) = (b"SET k v\n", b"+OK\n");
const REDIS_PROOF: (&[u8], &[u8]) = (b"SETRANGE 5000 xyz\n", redis::ERR_BLOCKED);

/// Every injection point against the single-process guest.
#[test]
fn every_phase_rolls_back_single_process_redis() {
    for phase in ALL_PHASES {
        let server = boot_redis();
        let plan = redis_plan(&server);
        assert_rollback_then_retry(
            server,
            &plan,
            redis::PORT,
            REDIS_PROBE,
            REDIS_PROOF,
            phase,
            0,
        );
    }
}

/// Every injection point against the multi-process guest, failing on the
/// **first** process (the master).
#[test]
fn every_phase_rolls_back_multi_process_nginx() {
    for phase in ALL_PHASES {
        let server = boot_nginx();
        let plan = nginx_plan(&server);
        assert_rollback_then_retry(
            server,
            &plan,
            nginx::PORT,
            NGINX_PROBE,
            NGINX_PROOF,
            phase,
            0,
        );
    }
}

/// Per-process phases failing on the **second** process: the master's
/// copy of the phase already succeeded and must be unwound too.
#[test]
fn per_process_phases_roll_back_when_the_worker_fails() {
    for phase in PER_PROCESS_PHASES {
        let server = boot_nginx();
        let plan = nginx_plan(&server);
        assert_rollback_then_retry(
            server,
            &plan,
            nginx::PORT,
            NGINX_PROBE,
            NGINX_PROOF,
            phase,
            1,
        );
    }
}

/// Satellite regression: an Nginx **worker** whose restore fails
/// mid-commit must not take down the master. The master's swap already
/// committed when the worker's fails, so the transaction has to unwind
/// the master back to its original process object, thaw everything, and
/// keep the established connection (and its TCP repair state) serving.
#[test]
fn nginx_worker_restore_failure_leaves_master_serving() {
    let mut server = boot_nginx();
    assert_eq!(server.pids.len(), 2, "master + worker");
    let mut dynacut = DynaCut::new(server.registry.clone()).with_incremental();
    let plan = nginx_plan(&server);

    let conn = server.kernel.client_connect(nginx::PORT).unwrap();
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_201,
        "PUT works before customization"
    );
    let pristine = server.kernel.state_fingerprint();

    // Skip the master's commit; fail the worker's.
    fault::arm(FaultPhase::RestoreCommit, 1);
    let err = dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .expect_err("worker's restore commit must fail");
    assert_eq!(err.injected_phase(), Some(FaultPhase::RestoreCommit));

    assert_eq!(
        server.kernel.state_fingerprint(),
        pristine,
        "master's committed swap was unwound along with everything else"
    );
    // The established connection survived and the master still serves
    // both reads and (still-enabled) writes through it.
    assert_eq!(
        server.kernel.client_request(conn, b"GET /i.html\n", 5_000_000).unwrap(),
        nginx::RESP_200
    );
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_201,
        "PUT still enabled: the aborted attempt must not half-apply"
    );
    // The listening socket was not torn down either.
    assert!(server.kernel.is_listening(nginx::PORT));

    // And the same plan commits cleanly afterwards.
    dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .expect("clean retry succeeds");
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_403
    );
}

/// A failure on the **second** incremental cycle must restore the
/// displaced baseline: the store keeps serving deltas against it and a
/// retry still commits. Covers the `BaselineStore` path where a valid
/// baseline from cycle one is taken out of `self` before the failure.
#[test]
fn second_cycle_failure_restores_the_displaced_baseline() {
    let mut server = boot_nginx();
    let mut dynacut = DynaCut::new(server.registry.clone()).with_incremental();
    let conn = server.kernel.client_connect(nginx::PORT).unwrap();

    // Cycle one: disable PUT. Establishes the incremental baseline.
    let disable = nginx_plan(&server);
    dynacut
        .customize(&mut server.kernel, &server.pids, &disable)
        .expect("first cycle");
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_403
    );

    // Cycle two re-enables PUT but dies storing the new baseline.
    let put = Feature::from_function("HTTP PUT", &server.exe, "ngx_put_handler")
        .unwrap()
        .redirect_to_function(&server.exe, nginx::ERROR_HANDLER)
        .unwrap();
    let enable = RewritePlan::new()
        .enable(put)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let pristine = server.kernel.state_fingerprint();
    fault::arm(FaultPhase::BaselineStore, 0);
    let err = dynacut
        .customize(&mut server.kernel, &server.pids, &enable)
        .expect_err("baseline store must fail");
    assert_eq!(err.injected_phase(), Some(FaultPhase::BaselineStore));
    assert_eq!(
        server.kernel.state_fingerprint(),
        pristine,
        "second cycle rolled back over the first cycle's committed state"
    );
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_403,
        "cycle one's customization survives the aborted cycle two"
    );

    // The displaced baseline was put back: cycle two retries cleanly.
    dynacut
        .customize(&mut server.kernel, &server.pids, &enable)
        .expect("retry of cycle two");
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_201,
        "PUT re-enabled by the retried cycle"
    );
}

/// With the copying restore opted in, the zero-copy hooks are never
/// reached: the armed fault stays armed and the identical customize
/// commits — proving `RestoreHandles`/`CowMaterialize` live strictly on
/// the handle-based path.
#[test]
fn copying_restore_never_reaches_the_zero_copy_hooks() {
    for phase in [FaultPhase::RestoreHandles, FaultPhase::CowMaterialize] {
        let mut server = boot_redis();
        let mut dynacut = DynaCut::new(server.registry.clone())
            .with_incremental()
            .with_copying_restore();
        let plan = redis_plan(&server);
        fault::arm(phase, 0);
        dynacut
            .customize(&mut server.kernel, &server.pids, &plan)
            .unwrap_or_else(|err| panic!("copying restore must not hit {phase}: {err}"));
        assert_eq!(fault::armed_count(), 1, "fault still armed ({phase})");
        fault::disarm_all();
        let conn = server.kernel.client_connect(redis::PORT).unwrap();
        assert_eq!(
            server.kernel.client_request(conn, REDIS_PROOF.0, 5_000_000).unwrap(),
            REDIS_PROOF.1,
            "the customization committed under the copying restore"
        );
    }
}

/// An armed fault whose phase is never reached stays armed (and is
/// cleaned up with `disarm_all`) — the non-incremental cycle never
/// pre-dumps, so the customize goes through untouched.
#[test]
fn unreached_phase_leaves_customize_untouched() {
    let mut server = boot_nginx();
    // No `.with_incremental()`: PreDump/BaselineStore/MarkClean never run.
    let mut dynacut = DynaCut::new(server.registry.clone());
    let plan = nginx_plan(&server);
    fault::arm(FaultPhase::PreDump, 0);
    dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .expect("non-incremental customize never hits the pre-dump hook");
    assert_eq!(fault::armed_count(), 1, "fault still armed");
    fault::disarm_all();
    assert_eq!(fault::armed_count(), 0);
    let conn = server.kernel.client_connect(nginx::PORT).unwrap();
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_403
    );
}

// ---------------------------------------------------------------------
// Rollout phases (PR 7): the canary-then-fleet pipeline must be as
// all-or-nothing as a single cycle. A fault during the soak or while
// promoting replica k demotes the canary (unwinding replicas 0..k
// first), leaving the whole fleet bit-identical to its pre-attempt
// state modulo the guest clock — the fleet kept serving, so parity is
// defined over `state_fingerprint_timeless`.
// ---------------------------------------------------------------------

/// Boots `replicas` identical single-process Redis replicas into one
/// kernel, all sharing the listener backlog.
fn boot_redis_fleet(replicas: usize) -> (Server, Vec<Vec<Pid>>) {
    let libc = guest_libc();
    let exe = redis::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(redis::CONFIG_PATH, &redis::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    let mut groups = Vec::with_capacity(replicas);
    for _ in 0..replicas {
        let pid = kernel.spawn(&spec).unwrap();
        kernel
            .run_until_event(EVENT_READY, 500_000_000)
            .expect("replica initializes");
        groups.push(vec![pid]);
    }
    let pids = kernel.pids();
    (
        Server {
            kernel,
            pids,
            exe,
            registry,
        },
        groups,
    )
}

/// The verifier-policy plan a rollout requires.
fn redis_verify_plan(server: &Server) -> RewritePlan {
    let setrange = Feature::from_function("SETRANGE", &server.exe, "rd_cmd_setrange").unwrap();
    RewritePlan::new()
        .disable(setrange)
        .with_fault_policy(FaultPolicy::Verify)
        .with_downtime(Downtime::None)
}

/// Asserts the fleet-wide demotion contract after a failed/demoted
/// rollout: clock-masked fingerprint parity, every pid alive and
/// thawed, zero leaked page refs — then retries the identical rollout
/// and requires a clean zero-copy promotion.
fn assert_demoted_then_repromote(
    server: &mut Server,
    dynacut: &mut DynaCut,
    groups: &[Vec<Pid>],
    plan: &RewritePlan,
    rollout_plan: &RolloutPlan,
    pristine: &str,
    ctx: &str,
) {
    assert_eq!(
        server.kernel.state_fingerprint_timeless(),
        pristine,
        "fleet-wide state parity after demotion ({ctx})"
    );
    for &pid in &server.pids {
        assert!(server.kernel.exit_status(pid).is_none(), "{pid} alive ({ctx})");
        assert_ne!(
            server.kernel.process(pid).unwrap().state,
            ProcState::Frozen,
            "{pid} thawed ({ctx})"
        );
    }
    assert_eq!(
        dynacut.store().logical_pages_bytes(),
        dynacut.store().stored_pages_bytes(),
        "no leaked page refs after demotion ({ctx})"
    );

    let retry = dynacut
        .rollout(&mut server.kernel, groups, plan, rollout_plan)
        .unwrap_or_else(|err| panic!("retry after demotion must promote ({ctx}): {err}"));
    assert_eq!(retry.decision, RolloutDecision::Promoted, "{ctx}");
    assert_eq!(retry.promoted.len(), groups.len() - 1, "{ctx}");
    assert_eq!(
        retry.promotion_copied_bytes, 0,
        "retry promotion still copies nothing ({ctx})"
    );
    assert_eq!(
        dynacut.store().logical_pages_bytes(),
        dynacut.store().stored_pages_bytes(),
        "no leaked page refs after the retry promotion ({ctx})"
    );
}

/// A fault while the canary soaks demotes the whole attempt. Skip 0
/// fires before the first serve slice, skip 2 two slices in.
#[test]
fn canary_soak_fault_demotes_and_retry_promotes() {
    for skip in [0usize, 2] {
        let ctx = format!("soak fault, skip {skip}");
        let (mut server, groups) = boot_redis_fleet(3);
        let plan = redis_verify_plan(&server);
        let rollout_plan = RolloutPlan {
            soak_slices: 4,
            serve_slice_ns: 200_000,
        };
        let mut dynacut = DynaCut::new(server.registry.clone()).with_incremental();
        let pristine = server.kernel.state_fingerprint_timeless();
        let demotions = server.kernel.flight().metrics().counter("rollout.demotions");

        fault::arm(FaultPhase::CanarySoak, skip);
        let err = dynacut
            .rollout(&mut server.kernel, &groups, &plan, &rollout_plan)
            .expect_err("armed soak must fail");
        assert_eq!(err.injected_phase(), Some(FaultPhase::CanarySoak), "{ctx}");
        assert_eq!(fault::armed_count(), 0, "fault consumed ({ctx})");
        assert_eq!(
            server.kernel.flight().metrics().counter("rollout.demotions"),
            demotions + 1,
            "demotion counted ({ctx})"
        );
        assert_demoted_then_repromote(
            &mut server,
            &mut dynacut,
            &groups,
            &plan,
            &rollout_plan,
            &pristine,
            &ctx,
        );
    }
}

/// A fault while promoting replica k first unwinds the already-promoted
/// replicas 0..k, then demotes the canary: all-or-nothing across the
/// fleet, for every k.
#[test]
fn promote_restore_fault_unwinds_the_whole_wave() {
    for skip in [0usize, 1, 2] {
        let ctx = format!("promotion fault at replica {skip}");
        let (mut server, groups) = boot_redis_fleet(4);
        let plan = redis_verify_plan(&server);
        let rollout_plan = RolloutPlan {
            soak_slices: 2,
            serve_slice_ns: 200_000,
        };
        let mut dynacut = DynaCut::new(server.registry.clone()).with_incremental();
        let pristine = server.kernel.state_fingerprint_timeless();
        let seq0 = server.kernel.flight().next_seq();

        fault::arm(FaultPhase::PromoteRestore, skip);
        let err = dynacut
            .rollout(&mut server.kernel, &groups, &plan, &rollout_plan)
            .expect_err("armed promotion must fail");
        assert_eq!(err.injected_phase(), Some(FaultPhase::PromoteRestore), "{ctx}");
        assert_eq!(fault::armed_count(), 0, "fault consumed ({ctx})");

        // The journal shows the unwind: one UndoRestore per promoted
        // replica plus one for the canary's own committed restore, and
        // the terminal event is the canary's rollback.
        let events: Vec<_> = server.kernel.flight().since(seq0).cloned().collect();
        let undos = events
            .iter()
            .filter(|e| {
                matches!(
                    e.kind,
                    EventKind::RollbackStep {
                        step: RollbackStep::UndoRestore
                    }
                )
            })
            .count();
        assert_eq!(undos, skip + 1, "replicas 0..k unwound, then the canary ({ctx})");
        assert!(
            events
                .iter()
                .any(|e| matches!(e.kind, EventKind::CanaryDemoted { .. })),
            "demotion journalled ({ctx})"
        );
        assert!(
            matches!(
                events.last().map(|e| &e.kind),
                Some(EventKind::CustomizeRollback)
            ),
            "journal ends with the terminal rollback ({ctx})"
        );
        assert!(
            !events.iter().any(|e| matches!(
                e.kind,
                EventKind::CustomizeCommit | EventKind::CanaryPromoted { .. }
            )),
            "a failed wave commits nothing ({ctx})"
        );

        assert_demoted_then_repromote(
            &mut server,
            &mut dynacut,
            &groups,
            &plan,
            &rollout_plan,
            &pristine,
            &ctx,
        );
    }
}

/// A synthetic verifier report planted in the event queue demotes the
/// canary mid-soak with the same fleet-wide guarantees as an injected
/// fault — and the report comes back in the rollout report instead of
/// an error.
#[test]
fn synthetic_verifier_report_mid_soak_demotes() {
    let (mut server, groups) = boot_redis_fleet(3);
    let plan = redis_verify_plan(&server);
    let rollout_plan = RolloutPlan {
        soak_slices: 4,
        serve_slice_ns: 200_000,
    };
    let mut dynacut = DynaCut::new(server.registry.clone()).with_incremental();
    let pristine = server.kernel.state_fingerprint_timeless();
    const ADDR: u64 = 0xFAB;
    server
        .kernel
        .inject_event(groups[0][0], VERIFIER_EVENT_BIT | ADDR);

    let report = dynacut
        .rollout(&mut server.kernel, &groups, &plan, &rollout_plan)
        .expect("a report is a demotion, not an error");
    assert_eq!(report.decision, RolloutDecision::Demoted);
    assert_eq!(report.verifier_reports, vec![ADDR]);
    assert!(report.promoted.is_empty());

    assert_demoted_then_repromote(
        &mut server,
        &mut dynacut,
        &groups,
        &plan,
        &rollout_plan,
        &pristine,
        "synthetic report",
    );
}
