//! Exhaustive error-path suite for transactional customize (DESIGN §5).
//!
//! Every phase of the customize cycle — pre-dump, dump, image edit,
//! library injection, restore build, restore commit, baseline store and
//! mark-clean — is failed on demand via [`dynacut_vm::fault`] against
//! both a single-process guest (Redis) and a multi-process guest (Nginx
//! master + worker). Each case asserts the transactional contract:
//!
//! 1. the failed `customize` returns the injected phase as a typed error,
//! 2. the kernel is left **bit-identical** to its pre-attempt state
//!    ([`Kernel::state_fingerprint`] equality: processes alive and
//!    thawed, memory, TCP, signal and dirty-bitmap state intact),
//! 3. the established client connection keeps serving, and
//! 4. retrying the identical plan succeeds and takes effect.
//!
//! Only built with `--features fault-injection`; the hooks compile to a
//! constant `false` otherwise.
#![cfg(feature = "fault-injection")]

use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_apps::{libc::guest_libc, nginx, redis, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_vm::fault::{self, FaultPhase};
use dynacut_vm::{Kernel, LoadSpec, Pid, ProcState};
use std::sync::Arc;

/// Every injection point in the customize cycle, in execution order.
const ALL_PHASES: [FaultPhase; 8] = [
    FaultPhase::PreDump,
    FaultPhase::Dump,
    FaultPhase::ImageEdit,
    FaultPhase::LibraryInjection,
    FaultPhase::RestoreBuild,
    FaultPhase::RestoreCommit,
    FaultPhase::BaselineStore,
    FaultPhase::MarkClean,
];

/// Phases whose hook fires once **per process**, so `skip = 1` targets
/// the second process (the Nginx worker) after the first succeeded.
const PER_PROCESS_PHASES: [FaultPhase; 5] = [
    FaultPhase::Dump,
    FaultPhase::ImageEdit,
    FaultPhase::LibraryInjection,
    FaultPhase::RestoreBuild,
    FaultPhase::RestoreCommit,
];

struct Server {
    kernel: Kernel,
    pids: Vec<Pid>,
    exe: Arc<dynacut_obj::Image>,
    registry: ModuleRegistry,
}

fn boot(
    image: fn(&dynacut_obj::Image) -> dynacut_obj::Image,
    config: (&str, Vec<u8>),
) -> Server {
    let libc = guest_libc();
    let exe = image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(config.0, &config.1);
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    kernel.spawn(&spec).unwrap();
    kernel.run_until_event(EVENT_READY, 100_000_000).expect("boot");
    let pids = kernel.pids();
    Server {
        kernel,
        pids,
        exe,
        registry,
    }
}

fn boot_nginx() -> Server {
    boot(nginx::image, (nginx::CONFIG_PATH, nginx::config_file()))
}

fn boot_redis() -> Server {
    boot(redis::image, (redis::CONFIG_PATH, redis::config_file()))
}

/// Disable Nginx's PUT handler with redirect-to-403.
fn nginx_plan(server: &Server) -> RewritePlan {
    let put = Feature::from_function("HTTP PUT", &server.exe, "ngx_put_handler")
        .unwrap()
        .redirect_to_function(&server.exe, nginx::ERROR_HANDLER)
        .unwrap();
    RewritePlan::new()
        .disable(put)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None)
}

/// Block Redis's vulnerable SETRANGE command with redirect-to-error.
fn redis_plan(server: &Server) -> RewritePlan {
    let setrange = Feature::from_function("SETRANGE", &server.exe, "rd_cmd_setrange")
        .unwrap()
        .redirect_to_function(&server.exe, redis::ERROR_HANDLER)
        .unwrap();
    RewritePlan::new()
        .disable(setrange)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None)
}

/// Drives one armed phase against a live guest and asserts the
/// transactional contract end to end: typed error, bit-identical
/// kernel-state rollback, surviving connection, successful retry.
///
/// `probe` is a benign request that must answer identically before the
/// attempt, after the rollback, and after the successful retry; `proof`
/// is a request whose reply flips once the customization commits.
#[allow(clippy::too_many_arguments)]
fn assert_rollback_then_retry(
    mut server: Server,
    plan: &RewritePlan,
    port: u16,
    probe: (&[u8], &[u8]),
    proof: (&[u8], &[u8]),
    phase: FaultPhase,
    skip: usize,
) {
    let ctx = format!("phase {phase}, skip {skip}");
    let mut dynacut = DynaCut::new(server.registry.clone()).with_incremental();
    let conn = server.kernel.client_connect(port).unwrap();
    assert_eq!(
        server.kernel.client_request(conn, probe.0, 5_000_000).unwrap(),
        probe.1,
        "guest serves before the attempt ({ctx})"
    );

    let pristine = server.kernel.state_fingerprint();
    fault::arm(phase, skip);
    let err = dynacut
        .customize(&mut server.kernel, &server.pids, plan)
        .expect_err("armed customize must fail");
    assert_eq!(
        err.injected_phase(),
        Some(phase),
        "error names the injected phase, got `{err}` ({ctx})"
    );
    assert_eq!(fault::armed_count(), 0, "the armed fault was consumed ({ctx})");

    // The tentpole invariant: the kernel rolled back to exactly the
    // pre-customization state — processes alive and thawed, memory, TCP,
    // sigaction and dirty-bitmap state bit-identical.
    assert_eq!(
        server.kernel.state_fingerprint(),
        pristine,
        "kernel state must roll back exactly ({ctx})"
    );
    for &pid in &server.pids {
        assert!(server.kernel.exit_status(pid).is_none(), "{pid} alive ({ctx})");
        assert_ne!(
            server.kernel.process(pid).unwrap().state,
            ProcState::Frozen,
            "{pid} thawed ({ctx})"
        );
    }

    // The pre-existing connection survived the aborted attempt (TCP
    // repair mode was left again) and the feature is still enabled.
    assert_eq!(
        server.kernel.client_request(conn, probe.0, 5_000_000).unwrap(),
        probe.1,
        "established connection still serves after rollback ({ctx})"
    );

    // Success implies the whole multi-process restore committed: the
    // identical plan goes through cleanly on the retry and takes effect.
    dynacut
        .customize(&mut server.kernel, &server.pids, plan)
        .unwrap_or_else(|err| panic!("retry after rollback must succeed ({ctx}): {err}"));
    assert_eq!(
        server.kernel.client_request(conn, proof.0, 5_000_000).unwrap(),
        proof.1,
        "customization applies on the retry ({ctx})"
    );
    assert_eq!(
        server.kernel.client_request(conn, probe.0, 5_000_000).unwrap(),
        probe.1,
        "benign traffic unaffected after the retry ({ctx})"
    );
    for &pid in &server.pids {
        assert!(server.kernel.exit_status(pid).is_none(), "{pid} alive after retry ({ctx})");
    }
}

const NGINX_PROBE: (&[u8], &[u8]) = (b"GET /i.html\n", nginx::RESP_200);
const NGINX_PROOF: (&[u8], &[u8]) = (b"PUT /f data", nginx::RESP_403);
const REDIS_PROBE: (&[u8], &[u8]) = (b"SET k v\n", b"+OK\n");
const REDIS_PROOF: (&[u8], &[u8]) = (b"SETRANGE 5000 xyz\n", redis::ERR_BLOCKED);

/// Every injection point against the single-process guest.
#[test]
fn every_phase_rolls_back_single_process_redis() {
    for phase in ALL_PHASES {
        let server = boot_redis();
        let plan = redis_plan(&server);
        assert_rollback_then_retry(
            server,
            &plan,
            redis::PORT,
            REDIS_PROBE,
            REDIS_PROOF,
            phase,
            0,
        );
    }
}

/// Every injection point against the multi-process guest, failing on the
/// **first** process (the master).
#[test]
fn every_phase_rolls_back_multi_process_nginx() {
    for phase in ALL_PHASES {
        let server = boot_nginx();
        let plan = nginx_plan(&server);
        assert_rollback_then_retry(
            server,
            &plan,
            nginx::PORT,
            NGINX_PROBE,
            NGINX_PROOF,
            phase,
            0,
        );
    }
}

/// Per-process phases failing on the **second** process: the master's
/// copy of the phase already succeeded and must be unwound too.
#[test]
fn per_process_phases_roll_back_when_the_worker_fails() {
    for phase in PER_PROCESS_PHASES {
        let server = boot_nginx();
        let plan = nginx_plan(&server);
        assert_rollback_then_retry(
            server,
            &plan,
            nginx::PORT,
            NGINX_PROBE,
            NGINX_PROOF,
            phase,
            1,
        );
    }
}

/// Satellite regression: an Nginx **worker** whose restore fails
/// mid-commit must not take down the master. The master's swap already
/// committed when the worker's fails, so the transaction has to unwind
/// the master back to its original process object, thaw everything, and
/// keep the established connection (and its TCP repair state) serving.
#[test]
fn nginx_worker_restore_failure_leaves_master_serving() {
    let mut server = boot_nginx();
    assert_eq!(server.pids.len(), 2, "master + worker");
    let mut dynacut = DynaCut::new(server.registry.clone()).with_incremental();
    let plan = nginx_plan(&server);

    let conn = server.kernel.client_connect(nginx::PORT).unwrap();
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_201,
        "PUT works before customization"
    );
    let pristine = server.kernel.state_fingerprint();

    // Skip the master's commit; fail the worker's.
    fault::arm(FaultPhase::RestoreCommit, 1);
    let err = dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .expect_err("worker's restore commit must fail");
    assert_eq!(err.injected_phase(), Some(FaultPhase::RestoreCommit));

    assert_eq!(
        server.kernel.state_fingerprint(),
        pristine,
        "master's committed swap was unwound along with everything else"
    );
    // The established connection survived and the master still serves
    // both reads and (still-enabled) writes through it.
    assert_eq!(
        server.kernel.client_request(conn, b"GET /i.html\n", 5_000_000).unwrap(),
        nginx::RESP_200
    );
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_201,
        "PUT still enabled: the aborted attempt must not half-apply"
    );
    // The listening socket was not torn down either.
    assert!(server.kernel.is_listening(nginx::PORT));

    // And the same plan commits cleanly afterwards.
    dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .expect("clean retry succeeds");
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_403
    );
}

/// A failure on the **second** incremental cycle must restore the
/// displaced baseline: the store keeps serving deltas against it and a
/// retry still commits. Covers the `BaselineStore` path where a valid
/// baseline from cycle one is taken out of `self` before the failure.
#[test]
fn second_cycle_failure_restores_the_displaced_baseline() {
    let mut server = boot_nginx();
    let mut dynacut = DynaCut::new(server.registry.clone()).with_incremental();
    let conn = server.kernel.client_connect(nginx::PORT).unwrap();

    // Cycle one: disable PUT. Establishes the incremental baseline.
    let disable = nginx_plan(&server);
    dynacut
        .customize(&mut server.kernel, &server.pids, &disable)
        .expect("first cycle");
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_403
    );

    // Cycle two re-enables PUT but dies storing the new baseline.
    let put = Feature::from_function("HTTP PUT", &server.exe, "ngx_put_handler")
        .unwrap()
        .redirect_to_function(&server.exe, nginx::ERROR_HANDLER)
        .unwrap();
    let enable = RewritePlan::new()
        .enable(put)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let pristine = server.kernel.state_fingerprint();
    fault::arm(FaultPhase::BaselineStore, 0);
    let err = dynacut
        .customize(&mut server.kernel, &server.pids, &enable)
        .expect_err("baseline store must fail");
    assert_eq!(err.injected_phase(), Some(FaultPhase::BaselineStore));
    assert_eq!(
        server.kernel.state_fingerprint(),
        pristine,
        "second cycle rolled back over the first cycle's committed state"
    );
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_403,
        "cycle one's customization survives the aborted cycle two"
    );

    // The displaced baseline was put back: cycle two retries cleanly.
    dynacut
        .customize(&mut server.kernel, &server.pids, &enable)
        .expect("retry of cycle two");
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_201,
        "PUT re-enabled by the retried cycle"
    );
}

/// An armed fault whose phase is never reached stays armed (and is
/// cleaned up with `disarm_all`) — the non-incremental cycle never
/// pre-dumps, so the customize goes through untouched.
#[test]
fn unreached_phase_leaves_customize_untouched() {
    let mut server = boot_nginx();
    // No `.with_incremental()`: PreDump/BaselineStore/MarkClean never run.
    let mut dynacut = DynaCut::new(server.registry.clone());
    let plan = nginx_plan(&server);
    fault::arm(FaultPhase::PreDump, 0);
    dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .expect("non-incremental customize never hits the pre-dump hook");
    assert_eq!(fault::armed_count(), 1, "fault still armed");
    fault::disarm_all();
    assert_eq!(fault::armed_count(), 0);
    let conn = server.kernel.client_connect(nginx::PORT).unwrap();
    assert_eq!(
        server.kernel.client_request(conn, b"PUT /f data", 5_000_000).unwrap(),
        nginx::RESP_403
    );
}
