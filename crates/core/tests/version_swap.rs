//! Multi-version code-cache pins for the customize cycle (DESIGN §11).
//!
//! PR 5's cache paid for every customize cycle with a full flush — the
//! whole request path re-decoded from scratch right after a rewrite.
//! The cycle now *carries* each displaced process's cache across the
//! restore swap under a bumped rewrite epoch: blocks over
//! byte-identical pages version-swap forward on their next dispatch
//! (no re-decode), blocks over rewritten pages can never revalidate,
//! and a rollback re-inserts the original process whose cache — keyed
//! under the old epoch — is hot the moment it lands. These tests pin
//! all three, plus fingerprint parity against the uncached oracle.

use dynacut::{
    Downtime, DynaCut, FaultPolicy, Feature, RewritePlan, RolloutDecision, RolloutPlan,
    VERIFIER_EVENT_BIT,
};
use dynacut_apps::{libc::guest_libc, nginx, redis, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_vm::{Kernel, LoadSpec, Pid, SchedPolicy};
use std::sync::Arc;

// ----- customize commit: version swap instead of flush ------------------

/// Boots nginx, warms the handlers, customizes PUT away, and returns
/// `(fingerprint, cache_len_after_commit, epoch_after_commit,
/// version_swaps_after_traffic)`.
fn nginx_cycle(cache_enabled: bool) -> (String, usize, u64, u64) {
    let libc = guest_libc();
    let exe = nginx::image(&libc);
    let mut kernel = Kernel::new();
    kernel.set_block_cache_enabled(cache_enabled);
    kernel.add_file(nginx::CONFIG_PATH, &nginx::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    kernel.spawn(&spec).unwrap();
    kernel.run_until_event(EVENT_READY, 100_000_000).expect("boot");
    let pids = kernel.pids();
    let pid = pids[0];

    // Warm the cache on the paths the cycle will (and will not) patch.
    let conn = kernel.client_connect(nginx::PORT).unwrap();
    for round in 0..3 {
        assert_eq!(
            kernel
                .client_request(conn, format!("PUT /w{round} data").as_bytes(), 5_000_000)
                .unwrap(),
            nginx::RESP_201
        );
        assert_eq!(
            kernel
                .client_request(conn, format!("GET /w{round}\n").as_bytes(), 5_000_000)
                .unwrap(),
            nginx::RESP_200
        );
    }

    let mut dynacut = DynaCut::new(registry);
    let feature = Feature::from_function("HTTP PUT", &exe, "ngx_put_handler")
        .unwrap()
        .redirect_to_function(&exe, nginx::ERROR_HANDLER)
        .unwrap();
    let plan = RewritePlan::new()
        .disable(feature)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    dynacut.customize(&mut kernel, &pids, &plan).unwrap();

    // The commit's cache state, before any post-cycle dispatch.
    let proc = kernel.process(pid).unwrap();
    let len_after_commit = proc.block_cache.len();
    let epoch_after_commit = proc.block_cache.epoch();
    let swaps_before = kernel.flight().metrics().counter("block_cache.version_swaps");

    // Post-cycle traffic: the planted trap fires on PUT, GET still
    // serves — and the warm blocks over unchanged pages come back
    // through version swaps, not re-decodes.
    assert_eq!(
        kernel
            .client_request(conn, b"PUT /after data", 5_000_000)
            .unwrap(),
        nginx::RESP_403,
        "trap visible immediately (cache_enabled={cache_enabled})"
    );
    assert_eq!(
        kernel
            .client_request(conn, b"GET /after\n", 5_000_000)
            .unwrap(),
        nginx::RESP_200
    );
    let version_swaps =
        kernel.flight().metrics().counter("block_cache.version_swaps") - swaps_before;
    (
        kernel.state_fingerprint(),
        len_after_commit,
        epoch_after_commit,
        version_swaps,
    )
}

/// The zero-flush commit: after `customize`, the process's cache still
/// holds the pre-cycle blocks under a bumped epoch, post-cycle traffic
/// re-keys them forward instead of re-decoding, the planted trap fires
/// anyway — and the whole cycle stays bit-identical to the uncached
/// oracle under `state_fingerprint()`.
#[test]
fn customize_commit_swaps_versions_instead_of_flushing() {
    let (fp_cached, len, epoch, version_swaps) = nginx_cycle(true);
    assert!(
        len > 0,
        "commit carried the warm cache instead of flushing (len={len})"
    );
    assert_eq!(epoch, 1, "one customize cycle bumps the rewrite epoch once");
    assert!(
        version_swaps > 0,
        "post-cycle traffic re-keyed pristine blocks forward \
         (version_swaps={version_swaps})"
    );

    let (fp_uncached, len_off, _, swaps_off) = nginx_cycle(false);
    assert_eq!(len_off, 0, "disabled cache stays empty");
    assert_eq!(swaps_off, 0);
    assert_eq!(
        fp_cached, fp_uncached,
        "version-swapped cache invisible across a full customize cycle"
    );
}

// ----- rollback: the pristine version re-dispatches for free ------------

/// One Redis replica plus the registry/exe handles a rollout needs.
struct Replica {
    kernel: Kernel,
    pid: Pid,
    exe: Arc<dynacut_obj::Image>,
    registry: ModuleRegistry,
}

fn boot_redis() -> Replica {
    let libc = guest_libc();
    let exe = redis::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(redis::CONFIG_PATH, &redis::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    let pid = kernel.spawn(&spec).unwrap();
    kernel
        .run_until_event(EVENT_READY, 500_000_000)
        .expect("replica initializes");
    Replica {
        kernel,
        pid,
        exe,
        registry,
    }
}

impl Replica {
    /// One request over a transient connection.
    fn request(&mut self, bytes: &[u8]) -> Vec<u8> {
        let conn = self.kernel.client_connect(redis::PORT).unwrap();
        let reply = self.kernel.client_request(conn, bytes, 10_000_000).unwrap();
        let _ = self.kernel.client_close(conn);
        reply
    }

    /// A fixed batch of requests exercising the paths the rollout
    /// touches (SETRANGE) and leaves alone (SET/GET).
    fn batch(&mut self) {
        assert_eq!(self.request(b"SET 3 xyz\n"), b"+OK\n");
        assert_eq!(self.request(b"SETRANGE 8 abc\n"), b"+OK\n");
        assert_eq!(self.request(b"GET 3\n"), b"xyz\n");
    }

    fn misses(&self) -> u64 {
        self.kernel.flight().metrics().counter("block_cache.misses")
    }
}

/// A demoted rollout re-inserts the original process with its cache
/// intact under the *old* epoch: the pristine version re-dispatches
/// immediately — the steady-state miss counter does not move — and the
/// replica's state matches both the pre-attempt snapshot and an
/// uncached oracle that served the same traffic.
#[test]
fn rollback_redispatches_pristine_version_without_redecode() {
    let mut replica = boot_redis();
    let mut oracle = boot_redis();
    oracle.kernel.set_block_cache_enabled(false);
    // This pin counts decode misses, and mid-block slice-over re-enters
    // the dispatcher at a fresh cache key — so the miss count is
    // sensitive to where slices end. Run under the fixed-quantum
    // round-robin oracle, whose slicing repeats exactly between the
    // steady-state batches and the post-rollback batch; the MLFQ's
    // per-level quanta shift those boundaries (guest-invisibly) as the
    // process changes level across the rollout.
    replica.kernel.set_scheduler(SchedPolicy::RoundRobin);
    oracle.kernel.set_scheduler(SchedPolicy::RoundRobin);

    // Warm to a steady state: identical batches until one completes
    // without a single new decode (every block on the path is cached).
    let mut steady = false;
    for _ in 0..10 {
        let before = replica.misses();
        replica.batch();
        oracle.batch();
        if replica.misses() == before {
            steady = true;
            break;
        }
    }
    assert!(steady, "the request path reaches a fully decoded steady state");

    // A verifier report mid-soak demotes the canary through the
    // transaction machinery.
    let setrange = Feature::from_function("SETRANGE", &replica.exe, "rd_cmd_setrange").unwrap();
    let plan = RewritePlan::new()
        .disable(setrange)
        .with_fault_policy(FaultPolicy::Verify)
        .with_downtime(Downtime::None);
    let rollout_plan = RolloutPlan {
        soak_slices: 6,
        serve_slice_ns: 200_000,
    };
    let mut dynacut = DynaCut::new(replica.registry.clone()).with_incremental();
    let groups = vec![vec![replica.pid]];

    let pristine = replica.kernel.state_fingerprint_timeless();
    replica
        .kernel
        .inject_event(replica.pid, VERIFIER_EVENT_BIT | 0xBEE);
    let report = dynacut
        .rollout(&mut replica.kernel, &groups, &plan, &rollout_plan)
        .unwrap();
    assert_eq!(report.decision, RolloutDecision::Demoted);
    assert_eq!(
        replica.kernel.state_fingerprint_timeless(),
        pristine,
        "demotion rolls back to the pre-attempt state"
    );

    // The rollback guarantee: the restored original still carries its
    // hot pre-rollout cache, so the same batch is served entirely out
    // of it — zero re-decodes — and SETRANGE is enabled again.
    let misses_before = replica.misses();
    let cache_len = replica.kernel.process(replica.pid).unwrap().block_cache.len();
    assert!(cache_len > 0, "the restored original kept its cache");
    replica.batch();
    oracle.batch();
    assert_eq!(
        replica.misses(),
        misses_before,
        "the pristine version re-dispatched with zero re-decodes"
    );

    // And the demoted replica still agrees with the uncached oracle on
    // every guest-observable byte (clock masked: the soak served real
    // traffic on the demoted side only).
    assert_eq!(
        replica.kernel.process(replica.pid).unwrap().mem.populated_pages().count(),
        oracle.kernel.process(oracle.pid).unwrap().mem.populated_pages().count(),
    );
    assert_eq!(
        replica.request(b"GET 3\n"),
        oracle.request(b"GET 3\n"),
        "same store contents after the demoted attempt"
    );
}
