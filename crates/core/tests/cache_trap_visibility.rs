//! Customize-cycle pin for the decoded-block translation cache
//! (DESIGN §11): a cycle's freshly planted `int3` bytes must fire on the
//! very next request even though the request handler's blocks were hot
//! in the cache when the cycle ran — and the whole cycle must be
//! bit-identical under `state_fingerprint()` with the cache on and off.

use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_apps::{libc::guest_libc, nginx, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_vm::{Kernel, LoadSpec};
use std::sync::Arc;

/// Boots nginx, warms the PUT handler, customizes PUT away with the
/// redirect policy, and checks the 403 lands immediately. Returns the
/// final kernel fingerprint plus the cache hit and trap counters.
fn scenario(cache_enabled: bool) -> (String, u64, u64) {
    let libc = guest_libc();
    let exe = nginx::image(&libc);
    let mut kernel = Kernel::new();
    kernel.set_block_cache_enabled(cache_enabled);
    kernel.add_file(nginx::CONFIG_PATH, &nginx::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    kernel.spawn(&spec).unwrap();
    kernel.run_until_event(EVENT_READY, 100_000_000).expect("boot");
    let pids = kernel.pids();

    // Warm the cache on the exact paths the cycle will patch: the PUT
    // handler itself plus the GET path used as the control.
    let conn = kernel.client_connect(nginx::PORT).unwrap();
    for round in 0..3 {
        assert_eq!(
            kernel
                .client_request(conn, format!("PUT /w{round} data").as_bytes(), 5_000_000)
                .unwrap(),
            nginx::RESP_201
        );
        assert_eq!(
            kernel
                .client_request(conn, format!("GET /w{round}\n").as_bytes(), 5_000_000)
                .unwrap(),
            nginx::RESP_200
        );
    }

    let mut dynacut = DynaCut::new(registry);
    let feature = Feature::from_function("HTTP PUT", &exe, "ngx_put_handler")
        .unwrap()
        .redirect_to_function(&exe, nginx::ERROR_HANDLER)
        .unwrap();
    let plan = RewritePlan::new()
        .disable(feature)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    dynacut.customize(&mut kernel, &pids, &plan).unwrap();

    // First post-cycle PUT on the same live connection: the planted trap
    // fires and redirects — no stale cached block runs the old handler.
    assert_eq!(
        kernel
            .client_request(conn, b"PUT /after data", 5_000_000)
            .unwrap(),
        nginx::RESP_403,
        "trap visible immediately (cache_enabled={cache_enabled})"
    );
    assert_eq!(
        kernel
            .client_request(conn, b"GET /after\n", 5_000_000)
            .unwrap(),
        nginx::RESP_200
    );
    for &pid in &pids {
        assert!(kernel.exit_status(pid).is_none(), "{pid} survived");
    }
    let hits = kernel.flight().metrics().counter("block_cache.hits");
    let traps = kernel.flight().metrics().counter("trap_hits.redirect");
    (kernel.state_fingerprint(), hits, traps)
}

#[test]
fn planted_trap_fires_through_hot_cache_after_customize() {
    let (fp_cached, hits, traps) = scenario(true);
    assert!(hits > 0, "the request path really ran out of the cache");
    assert!(traps > 0, "the planted trap really fired");

    let (fp_uncached, hits_off, traps_off) = scenario(false);
    assert_eq!(hits_off, 0, "disabled cache never hits");
    assert_eq!(traps, traps_off, "same trap activity either way");
    assert_eq!(
        fp_cached, fp_uncached,
        "cache invisible across a full customize cycle with traps firing"
    );
}
