//! Canary-then-fleet rollout suite (DESIGN §13, paper §3.2.3 scaled
//! out), plus the PR 7 regression tests for the correctness fixes that
//! ride along:
//!
//! * a clean soak promotes the canary's interned image onto every
//!   replica with **zero page bytes copied** and exactly one real dump,
//! * a verifier report during the soak demotes through the transaction
//!   machinery and leaves the fleet's clock-masked state fingerprint
//!   bit-identical to the pre-attempt snapshot,
//! * [`DynaCut::verifier_reports`] drains **only** verifier-tagged
//!   events (the old implementation destroyed interleaved guest
//!   events), and
//! * malformed rollouts are rejected as [`DynacutError::BadPlan`]
//!   before the fleet is touched.

use dynacut::{
    Downtime, DynaCut, DynacutError, EventKind, FaultPolicy, Feature, RewritePlan,
    RolloutDecision, RolloutPlan, VERIFIER_EVENT_BIT,
};
use dynacut_apps::{libc::guest_libc, redis, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_isa::TRAP_OPCODE;
use dynacut_vm::{Kernel, LoadSpec, Pid, ProcState};
use std::sync::Arc;

/// A fleet of identical single-process Redis replicas sharing one
/// kernel and one `SO_REUSEPORT`-style listener backlog.
struct Fleet {
    kernel: Kernel,
    groups: Vec<Vec<Pid>>,
    exe: Arc<dynacut_obj::Image>,
    registry: ModuleRegistry,
}

fn boot_fleet(replicas: usize) -> Fleet {
    let libc = guest_libc();
    let exe = redis::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(redis::CONFIG_PATH, &redis::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    let mut groups = Vec::with_capacity(replicas);
    for _ in 0..replicas {
        let pid = kernel.spawn(&spec).unwrap();
        // One `run_until_event` per spawn keeps the ready markers
        // unambiguous.
        kernel
            .run_until_event(EVENT_READY, 500_000_000)
            .expect("replica initializes");
        groups.push(vec![pid]);
    }
    Fleet {
        kernel,
        groups,
        exe,
        registry,
    }
}

impl Fleet {
    /// One request into the shared backlog over a transient connection;
    /// whichever unfrozen replica accepts first serves it.
    fn request(&mut self, bytes: &[u8]) -> Vec<u8> {
        let conn = self.kernel.client_connect(redis::PORT).unwrap();
        let reply = self.kernel.client_request(conn, bytes, 10_000_000).unwrap();
        let _ = self.kernel.client_close(conn);
        reply
    }

    /// The first byte of the SETRANGE handler in `pid`'s memory.
    fn setrange_entry_byte(&self, feature: &Feature, pid: Pid) -> u8 {
        let proc = self.kernel.process(pid).unwrap();
        let base = proc
            .modules
            .iter()
            .find(|m| m.image.name == redis::MODULE)
            .unwrap()
            .base;
        let mut byte = [0u8; 1];
        proc.mem
            .read_unchecked(base + feature.entry_block().unwrap().addr, &mut byte);
        byte[0]
    }
}

/// "Misclassify" SETRANGE as undesired under the verifier policy — the
/// only policy a rollout accepts.
fn verify_plan(exe: &dynacut_obj::Image) -> RewritePlan {
    let setrange = Feature::from_function("SETRANGE", exe, "rd_cmd_setrange").unwrap();
    RewritePlan::new()
        .disable(setrange)
        .with_fault_policy(FaultPolicy::Verify)
        .with_downtime(Downtime::None)
}

/// Zero leaked page refs: the store's refcount-derived footprint equals
/// the sum over stored checkpoints.
fn assert_no_leaked_pages(dynacut: &DynaCut, ctx: &str) {
    assert_eq!(
        dynacut.store().logical_pages_bytes(),
        dynacut.store().stored_pages_bytes(),
        "no leaked page refs ({ctx})"
    );
}

/// Regression (PR 7 fix): [`DynaCut::verifier_reports`] used
/// `drain_events()`, silently destroying every queued guest event that
/// was *not* a verifier report. The selective drain keeps them.
#[test]
fn verifier_reports_leave_other_guest_events_queued() {
    let mut fleet = boot_fleet(1);
    let pid = fleet.groups[0][0];
    // Start from an empty queue so the assertion below is exact (boot
    // can leave a stray ready marker behind).
    fleet.kernel.drain_events();
    const MARKER: u64 = 0x42;
    const ADDR: u64 = 0x7000;
    fleet.kernel.inject_event(pid, MARKER);
    fleet.kernel.inject_event(pid, VERIFIER_EVENT_BIT | ADDR);
    fleet.kernel.inject_event(pid, MARKER + 1);

    let reports = DynaCut::verifier_reports(&mut fleet.kernel);
    assert_eq!(reports, vec![ADDR], "the tagged event is extracted, untagged");

    // The interleaved guest markers survived the drain, in order.
    let codes: Vec<u64> = fleet.kernel.events().iter().map(|e| e.code).collect();
    assert_eq!(
        codes,
        vec![MARKER, MARKER + 1],
        "non-verifier events stay queued for their own consumers"
    );
    assert!(
        DynaCut::verifier_reports(&mut fleet.kernel).is_empty(),
        "a second drain finds nothing new"
    );
    assert_eq!(
        fleet.kernel.events().len(),
        2,
        "and still does not touch the queued markers"
    );
}

/// The tentpole happy path: one canary cycle, a clean soak, then N−1
/// shared-image promotions — no re-dump, no re-rewrite, zero page bytes
/// copied, and the rewrite live (and self-healing) on every replica.
#[test]
fn clean_soak_promotes_the_canary_image_fleet_wide() {
    let mut fleet = boot_fleet(4);
    let plan = verify_plan(&fleet.exe);
    let feature = plan.disable[0].clone();
    let rollout_plan = RolloutPlan {
        soak_slices: 4,
        serve_slice_ns: 200_000,
    };
    let mut dynacut = DynaCut::new(fleet.registry.clone()).with_incremental();
    let groups = fleet.groups.clone();
    let seq0 = fleet.kernel.flight().next_seq();

    let report = dynacut
        .rollout(&mut fleet.kernel, &groups, &plan, &rollout_plan)
        .unwrap();

    assert_eq!(report.decision, RolloutDecision::Promoted);
    assert_eq!(report.canary, groups[0]);
    assert_eq!(report.soak_slices, 4, "the full soak ran");
    assert!(report.verifier_reports.is_empty(), "clean soak");
    assert_eq!(report.trap_hits, 0, "no SETRANGE traffic, no traps");
    assert_eq!(report.promoted.len(), 3, "every non-canary group promoted");
    assert_eq!(
        report.promotion_copied_bytes, 0,
        "shared-image promotion copies zero page bytes"
    );
    for replica in &report.promoted {
        assert_eq!(replica.copied_bytes, 0, "per-replica too");
        assert!(replica.freeze_window.as_nanos() > 0, "window measured");
    }

    // The whole fleet paid for exactly one real dump — the canary's.
    let events: Vec<_> = fleet.kernel.flight().since(seq0).cloned().collect();
    let dumps = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::ProcessDumped { .. }))
        .count();
    assert_eq!(dumps, 1, "one canary dump, zero per-replica dumps");
    assert!(
        events.iter().any(|e| matches!(
            e.kind,
            EventKind::CanaryPromoted {
                replicas: 3,
                soak_slices: 4
            }
        )),
        "promotion journalled"
    );
    assert!(
        events.iter().any(|e| matches!(e.kind, EventKind::CustomizeCommit)),
        "the canary cycle committed"
    );
    assert!(
        !events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CustomizeRollback)),
        "nothing rolled back"
    );
    assert_eq!(
        fleet.kernel.flight().metrics().counter("rollout.promotions"),
        1
    );

    // The rewrite is physically present on every replica: the SETRANGE
    // entry byte is a trap byte in each process's memory.
    for group in &groups {
        for &pid in group {
            assert!(fleet.kernel.exit_status(pid).is_none(), "{pid} alive");
            assert_ne!(
                fleet.kernel.process(pid).unwrap().state,
                ProcState::Frozen,
                "{pid} serving"
            );
            assert_eq!(
                fleet.setrange_entry_byte(&feature, pid),
                TRAP_OPCODE,
                "{pid} carries the canary's rewrite"
            );
        }
    }
    assert_no_leaked_pages(&dynacut, "after promotion");

    // The fleet serves, and a *promoted* replica self-heals: with the
    // canary frozen, whichever replica accepts the SETRANGE must be one
    // that got the image by promotion, and under the verifier policy the
    // trap restores the byte, reports, and the request completes.
    assert_eq!(fleet.request(b"SET k v\n"), b"+OK\n");
    fleet.kernel.freeze(groups[0][0]).unwrap();
    assert_eq!(
        fleet.request(b"SETRANGE 8 abc\n"),
        b"+OK\n",
        "promoted replica self-heals and serves"
    );
    fleet.kernel.thaw(groups[0][0]).unwrap();
    let healed = DynaCut::verifier_reports(&mut fleet.kernel);
    assert!(
        !healed.is_empty(),
        "the self-heal on a promoted replica is reported"
    );
}

/// A verifier report during the soak demotes the canary through the
/// transaction machinery: the fleet's clock-masked fingerprint is
/// bit-identical to the pre-attempt snapshot, nothing leaks, and the
/// identical rollout promotes once the report stops coming.
#[test]
fn soak_report_demotes_the_canary_with_state_parity() {
    let mut fleet = boot_fleet(3);
    let plan = verify_plan(&fleet.exe);
    let rollout_plan = RolloutPlan {
        soak_slices: 6,
        serve_slice_ns: 200_000,
    };
    let mut dynacut = DynaCut::new(fleet.registry.clone()).with_incremental();
    let groups = fleet.groups.clone();
    let canary = groups[0][0];

    // Snapshot first, then plant the report: the soak drains the event,
    // so the queue length (part of the fingerprint) round-trips too.
    let pristine = fleet.kernel.state_fingerprint_timeless();
    const ADDR: u64 = 0xBEE;
    fleet.kernel.inject_event(canary, VERIFIER_EVENT_BIT | ADDR);
    let seq0 = fleet.kernel.flight().next_seq();

    let report = dynacut
        .rollout(&mut fleet.kernel, &groups, &plan, &rollout_plan)
        .unwrap();

    assert_eq!(report.decision, RolloutDecision::Demoted);
    assert_eq!(report.soak_slices, 1, "the first report decides");
    assert_eq!(report.verifier_reports, vec![ADDR]);
    assert!(report.promoted.is_empty(), "no replica was touched");
    assert_eq!(report.promotion_copied_bytes, 0);

    // The soak advanced the guest clock — the fleet kept serving — so
    // parity is defined over the clock-masked fingerprint.
    assert_eq!(
        fleet.kernel.state_fingerprint_timeless(),
        pristine,
        "demotion rolls the fleet back to its pre-attempt state"
    );
    assert_no_leaked_pages(&dynacut, "after demotion");

    let events: Vec<_> = fleet.kernel.flight().since(seq0).cloned().collect();
    assert!(
        events
            .iter()
            .any(|e| matches!(e.kind, EventKind::CanaryDemoted { reports: 1 })),
        "demotion journalled with the report count"
    );
    assert!(
        matches!(
            events.last().map(|e| &e.kind),
            Some(EventKind::CustomizeRollback)
        ),
        "the journal ends with the terminal rollback"
    );
    assert!(
        !events.iter().any(|e| matches!(
            e.kind,
            EventKind::CustomizeCommit | EventKind::CanaryPromoted { .. }
        )),
        "a demoted rollout commits nothing"
    );
    assert_eq!(
        fleet.kernel.flight().metrics().counter("rollout.demotions"),
        1
    );

    // SETRANGE is still enabled everywhere — the rewrite never landed.
    assert_eq!(fleet.request(b"SETRANGE 8 abc\n"), b"+OK\n");

    // The retry (no report this time) promotes.
    let retry = dynacut
        .rollout(&mut fleet.kernel, &groups, &plan, &rollout_plan)
        .unwrap();
    assert_eq!(retry.decision, RolloutDecision::Promoted);
    assert_eq!(retry.promoted.len(), 2);
    assert_eq!(retry.promotion_copied_bytes, 0);
    assert_no_leaked_pages(&dynacut, "after the retry promotion");
}

/// A *real* trap during the soak: a queued SETRANGE request is served by
/// the canary mid-soak, the verifier self-heals it and reports, and the
/// report demotes. Connection buffers legitimately diverge here (the
/// canary answered a request the rollback discards), so this asserts
/// behavior — alive, thawed, feature intact — rather than fingerprint
/// parity.
#[test]
fn real_trap_during_soak_demotes_the_canary() {
    let mut fleet = boot_fleet(1);
    let plan = verify_plan(&fleet.exe);
    let feature = plan.disable[0].clone();
    let rollout_plan = RolloutPlan {
        soak_slices: 8,
        serve_slice_ns: 10_000_000,
    };
    let mut dynacut = DynaCut::new(fleet.registry.clone()).with_incremental();
    let groups = fleet.groups.clone();
    let canary = groups[0][0];

    // Queue the poisoned request before the rollout: the canary's cycle
    // carries the connection through dump/restore in repair mode, then
    // the soak serves it.
    let conn = fleet.kernel.client_connect(redis::PORT).unwrap();
    fleet.kernel.client_send(conn, b"SETRANGE 8 abc\n").unwrap();

    let report = dynacut
        .rollout(&mut fleet.kernel, &groups, &plan, &rollout_plan)
        .unwrap();

    assert_eq!(report.decision, RolloutDecision::Demoted);
    assert!(report.trap_hits >= 1, "the canary really trapped");
    assert!(
        !report.verifier_reports.is_empty(),
        "the self-heal was reported"
    );
    assert!(report.soak_slices < rollout_plan.soak_slices, "cut short");

    assert!(fleet.kernel.exit_status(canary).is_none(), "canary alive");
    assert_ne!(
        fleet.kernel.process(canary).unwrap().state,
        ProcState::Frozen,
        "canary thawed"
    );
    assert_ne!(
        fleet.setrange_entry_byte(&feature, canary),
        TRAP_OPCODE,
        "the rewrite was rolled back"
    );
    assert_no_leaked_pages(&dynacut, "after the real-trap demotion");

    // A fresh connection confirms the feature still works untouched.
    assert_eq!(fleet.request(b"SETRANGE 16 xyz\n"), b"+OK\n");
}

/// Malformed rollouts are rejected as typed [`DynacutError::BadPlan`]s
/// before any process is frozen or dumped.
#[test]
fn bad_rollouts_are_rejected_before_touching_the_fleet() {
    let mut fleet = boot_fleet(1);
    let plan = verify_plan(&fleet.exe);
    let rollout_plan = RolloutPlan::default();
    let groups = fleet.groups.clone();
    let pid = groups[0][0];
    let pristine = fleet.kernel.state_fingerprint();

    let mut incremental = DynaCut::new(fleet.registry.clone()).with_incremental();

    // Zero soak slices: the promotion decision would be vacuous.
    let zero_soak = RolloutPlan {
        soak_slices: 0,
        serve_slice_ns: 200_000,
    };
    assert!(matches!(
        incremental.rollout(&mut fleet.kernel, &groups, &plan, &zero_soak),
        Err(DynacutError::BadPlan(_))
    ));

    // No replicas at all.
    assert!(matches!(
        incremental.rollout(&mut fleet.kernel, &[], &plan, &rollout_plan),
        Err(DynacutError::BadPlan(_))
    ));

    // A non-verifier policy cannot soak: traps would kill or redirect
    // instead of reporting.
    let redirect = verify_plan(&fleet.exe).with_fault_policy(FaultPolicy::Redirect);
    assert!(matches!(
        incremental.rollout(&mut fleet.kernel, &groups, &plan.clone().with_fault_policy(FaultPolicy::Terminate), &rollout_plan),
        Err(DynacutError::BadPlan(_))
    ));
    assert!(matches!(
        incremental.rollout(&mut fleet.kernel, &groups, &redirect, &rollout_plan),
        Err(DynacutError::BadPlan(_))
    ));

    // Promotion restores from the stored image: non-incremental
    // sessions store nothing to promote from.
    let mut plain = DynaCut::new(fleet.registry.clone());
    assert!(matches!(
        plain.rollout(&mut fleet.kernel, &groups, &plan, &rollout_plan),
        Err(DynacutError::BadPlan(_))
    ));

    // Mismatched group sizes: the canary's image retargets one-to-one.
    let lopsided = vec![vec![pid], vec![pid, pid]];
    assert!(matches!(
        incremental.rollout(&mut fleet.kernel, &lopsided, &plan, &rollout_plan),
        Err(DynacutError::BadPlan(_))
    ));

    assert_eq!(
        fleet.kernel.state_fingerprint(),
        pristine,
        "every rejection happened before the fleet was touched"
    );
}
