//! Byte accounting for the zero-copy restore (DESIGN §12): a restored
//! page counts toward `restore_copied_bytes` only when it is physically
//! copied — a first-sight intern into the content-addressed store —
//! never when it is handed out as a shared frame. The copying restore
//! reports the whole payload every cycle; both modes end in
//! bit-identical guest state, and the flight metrics mirror the
//! per-cycle reports exactly.

use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_apps::{libc::guest_libc, redis, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_vm::{Kernel, LoadSpec, Pid};
use std::sync::Arc;

struct Server {
    kernel: Kernel,
    pids: Vec<Pid>,
    exe: Arc<dynacut_obj::Image>,
    registry: ModuleRegistry,
}

fn boot_redis() -> Server {
    let libc = guest_libc();
    let exe = redis::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(redis::CONFIG_PATH, &redis::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    kernel.spawn(&spec).unwrap();
    kernel
        .run_until_event(EVENT_READY, 100_000_000)
        .expect("boot");
    let pids = kernel.pids();
    Server {
        kernel,
        pids,
        exe,
        registry,
    }
}

fn disable_plan(server: &Server) -> RewritePlan {
    let setrange = Feature::from_function("SETRANGE", &server.exe, "rd_cmd_setrange")
        .unwrap()
        .redirect_to_function(&server.exe, redis::ERROR_HANDLER)
        .unwrap();
    RewritePlan::new()
        .disable(setrange)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None)
}

fn enable_plan(server: &Server) -> RewritePlan {
    let setrange = Feature::from_function("SETRANGE", &server.exe, "rd_cmd_setrange")
        .unwrap()
        .redirect_to_function(&server.exe, redis::ERROR_HANDLER)
        .unwrap();
    RewritePlan::new()
        .enable(setrange)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None)
}

/// Drives the same two-cycle workload (disable SETRANGE, serve, enable
/// it back) and returns the two reports plus the kernel for inspection.
fn run_two_cycles(mut dynacut: DynaCut, mut server: Server) -> (Server, Vec<dynacut::CustomizeReport>) {
    let mut reports = Vec::new();
    let disable = disable_plan(&server);
    reports.push(
        dynacut
            .customize(&mut server.kernel, &server.pids, &disable)
            .expect("cycle one"),
    );
    let conn = server.kernel.client_connect(redis::PORT).unwrap();
    assert_eq!(
        server
            .kernel
            .client_request(conn, b"SET k v\n", 5_000_000)
            .unwrap(),
        b"+OK\n"
    );
    let enable = enable_plan(&server);
    reports.push(
        dynacut
            .customize(&mut server.kernel, &server.pids, &enable)
            .expect("cycle two"),
    );
    (server, reports)
}

/// Zero-copy accounting: the first cycle pays for first-sight pages
/// once; the second cycle's restore copies only what changed since the
/// stored baseline — far less than the payload the copying restore
/// would move — and the flight metrics agree with the reports.
#[test]
fn zero_copy_counts_only_first_sight_pages() {
    let server = boot_redis();
    let dynacut = DynaCut::new(server.registry.clone()).with_incremental();
    let (server, reports) = run_two_cycles(dynacut, server);

    let payload1 = reports[0].stored_page_bytes.expect("baseline stored");
    assert!(
        reports[0].restore_copied_bytes > 0,
        "a cold store has seen no page: the first restore copies"
    );
    assert!(
        reports[0].restore_copied_bytes <= payload1,
        "dedup within the payload can only shrink the copy \
         ({} > {payload1})",
        reports[0].restore_copied_bytes
    );
    assert!(
        reports[1].restore_copied_bytes < reports[0].restore_copied_bytes,
        "against the stored baseline only changed pages copy \
         ({} >= {})",
        reports[1].restore_copied_bytes,
        reports[0].restore_copied_bytes
    );

    // Restored pages are lazily materialized: they sit on shared frames
    // until a guest write CoW-faults them, and only those faults move
    // bytes after the restore.
    let proc = server.kernel.process(server.pids[0]).unwrap();
    assert!(
        proc.mem.shared_page_count() > 0,
        "untouched restored pages stay on shared frames"
    );

    // The flight metrics mirror the per-cycle reports exactly.
    let copied: usize = reports.iter().map(|r| r.restore_copied_bytes).sum();
    assert_eq!(
        server
            .kernel
            .flight()
            .metrics()
            .counter("pages_restore_copied_bytes"),
        copied as u64
    );

    // Frozen/prewritten accounting is unchanged by laziness: what the
    // dump moved is reported whether or not the restore copied it.
    for (i, report) in reports.iter().enumerate() {
        assert!(
            report.frozen_page_bytes + report.prewritten_page_bytes > 0,
            "cycle {i} dumped something"
        );
        assert!(
            report.restore_copied_bytes
                <= report.frozen_page_bytes + report.prewritten_page_bytes,
            "cycle {i}: the restore never copies more than the dump moved"
        );
    }
}

/// The copying restore pays the whole stored payload every cycle and
/// leaves no page on a shared frame — the baseline the figure's ≥5×
/// gate divides by.
#[test]
fn copying_restore_reports_the_whole_payload_every_cycle() {
    let server = boot_redis();
    let dynacut = DynaCut::new(server.registry.clone())
        .with_incremental()
        .with_copying_restore();
    let (server, reports) = run_two_cycles(dynacut, server);

    assert_eq!(
        reports[0].restore_copied_bytes,
        reports[0].stored_page_bytes.expect("baseline stored"),
        "first cycle: the copying restore moves the full payload"
    );
    for (i, report) in reports.iter().enumerate() {
        assert!(
            report.restore_copied_bytes > 0,
            "cycle {i} copied its payload"
        );
    }
    assert_eq!(
        server
            .kernel
            .process(server.pids[0])
            .unwrap()
            .mem
            .shared_page_count(),
        0,
        "the copying restore owns every page privately"
    );
}

/// Both restore modes end in bit-identical guest state: two identically
/// booted and identically driven kernels fingerprint-match across the
/// zero-copy/copying divide — only the physical copy cost differs.
#[test]
fn restore_modes_are_fingerprint_identical() {
    let zc = boot_redis();
    let zc_dynacut = DynaCut::new(zc.registry.clone()).with_incremental();
    let (zc_server, zc_reports) = run_two_cycles(zc_dynacut, zc);

    let cp = boot_redis();
    let cp_dynacut = DynaCut::new(cp.registry.clone())
        .with_incremental()
        .with_copying_restore();
    let (cp_server, cp_reports) = run_two_cycles(cp_dynacut, cp);

    assert_eq!(
        zc_server.kernel.state_fingerprint(),
        cp_server.kernel.state_fingerprint(),
        "restore mode must be invisible to guest-observable state"
    );
    let zc_copied: usize = zc_reports.iter().map(|r| r.restore_copied_bytes).sum();
    let cp_copied: usize = cp_reports.iter().map(|r| r.restore_copied_bytes).sum();
    assert!(
        zc_copied < cp_copied,
        "zero-copy moved fewer bytes ({zc_copied} >= {cp_copied})"
    );
}
