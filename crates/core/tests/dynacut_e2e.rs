//! End-to-end DynaCut scenarios on the live guest servers — the paper's
//! §3.2/§4 workflows, from trace collection through customization,
//! redirect handling, re-enabling, and verification.

use dynacut::{
    BlockPolicy, Downtime, DynaCut, FaultPolicy, Feature, RewritePlan,
};
use dynacut_analysis::{init_only_blocks, CovGraph};
use dynacut_apps::{libc::guest_libc, lighttpd, nginx, redis, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_isa::{BasicBlock, TRAP_OPCODE};
use dynacut_trace::Tracer;
use dynacut_vm::{Kernel, LoadSpec, Pid, Signal};
use std::sync::Arc;

struct Server {
    kernel: Kernel,
    pids: Vec<Pid>,
    exe: Arc<dynacut_obj::Image>,
    registry: ModuleRegistry,
}

fn boot_nginx() -> Server {
    let libc = guest_libc();
    let exe = nginx::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(nginx::CONFIG_PATH, &nginx::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let registry = {
        let mut registry = ModuleRegistry::new();
        registry.insert(Arc::clone(&spec.exe));
        for lib in &spec.libs {
            registry.insert(Arc::clone(lib));
        }
        registry
    };
    let exe = Arc::clone(&spec.exe);
    kernel.spawn(&spec).unwrap();
    kernel.run_until_event(EVENT_READY, 100_000_000).expect("boot");
    let pids = kernel.pids();
    Server {
        kernel,
        pids,
        exe,
        registry,
    }
}

fn boot_redis() -> Server {
    let libc = guest_libc();
    let exe = redis::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(redis::CONFIG_PATH, &redis::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let registry = {
        let mut registry = ModuleRegistry::new();
        registry.insert(Arc::clone(&spec.exe));
        for lib in &spec.libs {
            registry.insert(Arc::clone(lib));
        }
        registry
    };
    let exe = Arc::clone(&spec.exe);
    kernel.spawn(&spec).unwrap();
    kernel.run_until_event(EVENT_READY, 100_000_000).expect("boot");
    let pids = kernel.pids();
    Server {
        kernel,
        pids,
        exe,
        registry,
    }
}

fn put_feature(exe: &dynacut_obj::Image) -> Feature {
    Feature::from_function("HTTP PUT", exe, "ngx_put_handler")
        .unwrap()
        .redirect_to_function(exe, nginx::ERROR_HANDLER)
        .unwrap()
}

fn delete_feature(exe: &dynacut_obj::Image) -> Feature {
    Feature::from_function("HTTP DELETE", exe, "ngx_delete_handler")
        .unwrap()
        .redirect_to_function(exe, nginx::ERROR_HANDLER)
        .unwrap()
}

/// Paper Figure 5: disabled PUT/DELETE answer 403 via the injected fault
/// handler; GET keeps working; the server never dies; re-enabling brings
/// PUT back. All over a single live TCP connection.
#[test]
fn nginx_put_delete_block_redirect_and_reenable() {
    let mut server = boot_nginx();
    let mut dynacut = DynaCut::new(server.registry.clone());
    let conn = server.kernel.client_connect(nginx::PORT).unwrap();
    assert_eq!(
        server
            .kernel
            .client_request(conn, b"PUT /f data", 2_000_000)
            .unwrap(),
        nginx::RESP_201
    );

    // Disable PUT and DELETE with redirect-to-403.
    let plan = RewritePlan::new()
        .disable(put_feature(&server.exe))
        .disable(delete_feature(&server.exe))
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let report = dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .unwrap();
    assert!(report.blocks_disabled > 0);
    assert_eq!(report.handler_bases.len(), 2, "handler in master and worker");

    // Same connection: PUT/DELETE now answer 403; GET unaffected.
    assert_eq!(
        server
            .kernel
            .client_request(conn, b"PUT /f data", 5_000_000)
            .unwrap(),
        nginx::RESP_403
    );
    assert_eq!(
        server
            .kernel
            .client_request(conn, b"DELETE /f", 5_000_000)
            .unwrap(),
        nginx::RESP_403
    );
    assert_eq!(
        server
            .kernel
            .client_request(conn, b"GET /i.html\n", 5_000_000)
            .unwrap(),
        nginx::RESP_200
    );
    for &pid in &server.pids {
        assert!(server.kernel.exit_status(pid).is_none(), "{pid} alive");
    }

    // Re-enable PUT only.
    let plan = RewritePlan::new()
        .enable(put_feature(&server.exe))
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let pids = server.kernel.pids();
    dynacut.customize(&mut server.kernel, &pids, &plan).unwrap();
    assert_eq!(
        server
            .kernel
            .client_request(conn, b"PUT /f data", 5_000_000)
            .unwrap(),
        nginx::RESP_201,
        "PUT restored"
    );
}

/// Without an injected handler (Terminate policy), touching blocked code
/// kills the worker with SIGTRAP — the behaviour of prior debloating
/// systems the paper improves on.
#[test]
fn terminate_policy_kills_on_access() {
    let mut server = boot_nginx();
    let mut dynacut = DynaCut::new(server.registry.clone());
    let plan = RewritePlan::new()
        .disable(put_feature(&server.exe))
        .with_fault_policy(FaultPolicy::Terminate)
        .with_downtime(Downtime::None);
    dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .unwrap();
    let conn = server.kernel.client_connect(nginx::PORT).unwrap();
    let reply = server
        .kernel
        .client_request(conn, b"PUT /f data", 5_000_000)
        .unwrap();
    assert!(reply.is_empty(), "no answer from a dead worker");
    let killed = server
        .pids
        .iter()
        .filter_map(|&pid| server.kernel.exit_status(pid))
        .find(|s| s.fatal_signal == Some(Signal::Sigtrap));
    assert!(killed.is_some(), "worker killed by SIGTRAP");
}

/// Wipe policy: every byte of every feature block becomes 0xCC, denying
/// mid-block ROP-style entry (paper §3.2.1).
#[test]
fn wipe_policy_fills_whole_blocks_with_trap_bytes() {
    let mut server = boot_nginx();
    let mut dynacut = DynaCut::new(server.registry.clone());
    let feature = put_feature(&server.exe);
    let plan = RewritePlan::new()
        .disable(feature.clone())
        .with_block_policy(BlockPolicy::WipeBlocks)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .unwrap();

    // Inspect the worker's memory: all feature bytes are 0xCC.
    let worker = *server.pids.last().unwrap();
    let proc = server.kernel.process(worker).unwrap();
    let base = proc
        .modules
        .iter()
        .find(|m| m.image.name == nginx::MODULE)
        .unwrap()
        .base;
    for block in &feature.blocks {
        let mut bytes = vec![0u8; block.size as usize];
        proc.mem.read_unchecked(base + block.addr, &mut bytes);
        assert!(
            bytes.iter().all(|&b| b == TRAP_OPCODE),
            "block {block} fully wiped"
        );
    }
    // And the feature still answers 403 via redirect.
    let conn = server.kernel.client_connect(nginx::PORT).unwrap();
    assert_eq!(
        server
            .kernel
            .client_request(conn, b"PUT /f data", 5_000_000)
            .unwrap(),
        nginx::RESP_403
    );
}

/// Table 1: blocking Redis's vulnerable commands turns real crashes into
/// graceful "-ERR blocked" replies.
#[test]
fn redis_cve_blocking_defeats_exploits() {
    let mut server = boot_redis();
    let mut dynacut = DynaCut::new(server.registry.clone());
    let mut plan = RewritePlan::new()
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    for handler in ["rd_cmd_stralgo", "rd_cmd_setrange", "rd_cmd_config"] {
        plan = plan.disable(
            Feature::from_function(handler, &server.exe, handler)
                .unwrap()
                .redirect_to_function(&server.exe, redis::ERROR_HANDLER)
                .unwrap(),
        );
    }
    dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .unwrap();

    let conn = server.kernel.client_connect(redis::PORT).unwrap();
    let a = "a".repeat(32);
    let b = "b".repeat(32);
    let attacks = [
        format!("STRALGO {a} {b}\n"),
        "SETRANGE 5000 xyz\n".to_owned(),
        format!("CONFIG {}\n", "v".repeat(64)),
    ];
    for attack in &attacks {
        let reply = server
            .kernel
            .client_request(conn, attack.as_bytes(), 5_000_000)
            .unwrap();
        assert_eq!(reply, redis::ERR_BLOCKED, "attack blocked: {attack:?}");
    }
    // The rest of the server still works.
    assert_eq!(
        server
            .kernel
            .client_request(conn, b"SET k v\n", 5_000_000)
            .unwrap(),
        b"+OK\n"
    );
    assert_eq!(
        server
            .kernel
            .client_request(conn, b"GET k\n", 5_000_000)
            .unwrap(),
        b"v\n"
    );
    assert!(server.kernel.exit_status(server.pids[0]).is_none());
}

/// Initialization-code removal on Lighttpd: trace the init phase, nudge,
/// compute the init-only set, remove it, and keep serving.
#[test]
fn lighttpd_init_code_removal_keeps_server_working() {
    let libc = guest_libc();
    let exe = lighttpd::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(lighttpd::CONFIG_PATH, &lighttpd::config_file());
    let tracer = Tracer::install(&mut kernel);
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let exe = Arc::clone(&spec.exe);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let pid = kernel.spawn(&spec).unwrap();
    tracer.track(&kernel, pid).unwrap();

    // Init phase, then the nudge.
    kernel.run_until_event(EVENT_READY, 100_000_000).expect("boot");
    let init_cov = CovGraph::from_log(&tracer.nudge());

    // Serving phase: exercise GET/HEAD so hot blocks are known.
    let conn = kernel.client_connect(lighttpd::PORT).unwrap();
    for _ in 0..3 {
        kernel.client_request(conn, b"GET /\n", 2_000_000).unwrap();
        kernel.client_request(conn, b"HEAD /\n", 2_000_000).unwrap();
    }
    let serving_cov = CovGraph::from_log(&tracer.snapshot());

    // tracediff: init-only blocks of the application module.
    let init_only = init_only_blocks(&init_cov, &serving_cov).retain_modules(&[lighttpd::MODULE]);
    assert!(init_only.len() > 20, "substantial init-only code found");
    let blocks: Vec<BasicBlock> = init_only
        .module_blocks(lighttpd::MODULE)
        .into_iter()
        .map(|(offset, size)| BasicBlock::new(offset, size))
        .collect();

    let mut dynacut = DynaCut::new(registry);
    let plan = RewritePlan::new()
        .remove_init_blocks(lighttpd::MODULE, blocks.clone())
        .with_downtime(Downtime::None);
    let report = dynacut.customize(&mut kernel, &[pid], &plan).unwrap();
    assert!(report.bytes_written > 0);

    // The server still serves.
    assert_eq!(
        kernel.client_request(conn, b"GET /\n", 5_000_000).unwrap(),
        nginx::RESP_200
    );
    // And the removed init bytes are really trap bytes in memory.
    let proc = kernel.process(pid).unwrap();
    let base = proc
        .modules
        .iter()
        .find(|m| m.image.name == lighttpd::MODULE)
        .unwrap()
        .base;
    let sample = blocks.first().unwrap();
    let mut bytes = vec![0u8; sample.size as usize];
    proc.mem.read_unchecked(base + sample.addr, &mut bytes);
    assert!(bytes.iter().all(|&b| b == TRAP_OPCODE));
    let _ = exe;
}

/// The verifier (paper §3.2.3): a wanted block wrongly blocked self-heals
/// on first access and the false positive is reported to the operator.
#[test]
fn verifier_heals_misclassified_blocks_and_reports_them() {
    let mut server = boot_nginx();
    let mut dynacut = DynaCut::new(server.registry.clone());
    // "Misclassify" the GET handler as undesired.
    let get_feature = Feature::from_function("GET", &server.exe, "ngx_get_handler").unwrap();
    let plan = RewritePlan::new()
        .disable(get_feature.clone())
        .with_fault_policy(FaultPolicy::Verify)
        .with_downtime(Downtime::None);
    dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .unwrap();
    server.kernel.drain_events();

    // The first GET triggers the trap, the verifier restores the byte and
    // the request completes correctly.
    let conn = server.kernel.client_connect(nginx::PORT).unwrap();
    let reply = server
        .kernel
        .client_request(conn, b"GET /x\n", 10_000_000)
        .unwrap();
    assert_eq!(reply, nginx::RESP_200, "healed and answered");

    // The false positive was reported.
    let reports = DynaCut::verifier_reports(&mut server.kernel);
    let worker = *server.pids.last().unwrap();
    let base = server
        .kernel
        .process(worker)
        .unwrap()
        .modules
        .iter()
        .find(|m| m.image.name == nginx::MODULE)
        .unwrap()
        .base;
    let expected = base + get_feature.entry_block().unwrap().addr;
    assert!(
        reports.contains(&expected),
        "report {reports:x?} contains {expected:#x}"
    );

    // Subsequent GETs run at full speed (no more traps).
    let reply = server
        .kernel
        .client_request(conn, b"GET /y\n", 5_000_000)
        .unwrap();
    assert_eq!(reply, nginx::RESP_200);
    assert!(DynaCut::verifier_reports(&mut server.kernel).is_empty());
}

/// UnmapPages policy removes whole pages from the address space.
#[test]
fn unmap_policy_removes_pages() {
    let mut server = boot_nginx();
    let mut dynacut = DynaCut::new(server.registry.clone());
    // Build one big synthetic feature covering the never-used modules so
    // whole pages qualify for unmapping.
    let exe = &server.exe;
    let mut blocks = Vec::new();
    for func in &exe.functions {
        if func.name.starts_with("ngx_ssl")
            || func.name.starts_with("ngx_proxy")
            || func.name.starts_with("ngx_cache")
            || func.name.starts_with("ngx_gzip")
            || func.name.starts_with("ngx_upstream")
        {
            blocks.extend(exe.blocks_of_function(&func.name));
        }
    }
    let feature = Feature::new("cold modules", nginx::MODULE, blocks);
    let plan = RewritePlan::new()
        .disable(feature)
        .with_block_policy(BlockPolicy::UnmapPages)
        .with_downtime(Downtime::None);
    let report = dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .unwrap();
    assert!(report.pages_unmapped > 0, "whole pages unmapped");

    // Server still functional.
    let conn = server.kernel.client_connect(nginx::PORT).unwrap();
    assert_eq!(
        server
            .kernel
            .client_request(conn, b"GET /\n", 5_000_000)
            .unwrap(),
        nginx::RESP_200
    );
}

/// The report's timing breakdown is sane: all phases ran, checkpoint
/// image has bytes.
#[test]
fn customize_report_has_timings_and_sizes() {
    let mut server = boot_nginx();
    let mut dynacut = DynaCut::new(server.registry.clone());
    let plan = RewritePlan::new()
        .disable(put_feature(&server.exe))
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let report = dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .unwrap();
    assert!(report.image_bytes > 0);
    assert!(report.timings.total().as_nanos() > 0);
    assert_eq!(report.bytes_written, 2, "one entry byte per process");
}

/// Downtime accounting: the fixed ≈400 ms window appears on the guest
/// clock.
#[test]
fn downtime_is_charged_to_guest_clock() {
    let mut server = boot_nginx();
    let mut dynacut = DynaCut::new(server.registry.clone());
    let before = server.kernel.clock_ns();
    let plan = RewritePlan::new()
        .disable(put_feature(&server.exe))
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::Fixed(400_000_000));
    dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .unwrap();
    assert!(server.kernel.clock_ns() >= before + 400_000_000);
}

/// Error recovery: a plan referencing an unknown module fails cleanly and
/// the processes are thawed — the server keeps serving as if nothing
/// happened. The rollback is exact: the whole kernel state fingerprint
/// matches the pre-attempt snapshot (DESIGN §5).
#[test]
fn failed_customize_thaws_and_leaves_server_untouched() {
    let mut server = boot_nginx();
    let mut dynacut = DynaCut::new(server.registry.clone());
    let pristine = server.kernel.state_fingerprint();
    let bogus = Feature::new(
        "ghost",
        "no_such_module",
        vec![dynacut_isa::BasicBlock::new(0, 4)],
    );
    // remove_blocks on a bogus module is skipped silently (not mapped);
    // but a disable on an out-of-range block of a real module errors.
    let out_of_range = Feature::new(
        "oob",
        nginx::MODULE,
        vec![dynacut_isa::BasicBlock::new(0xFFFF_F000, 16)],
    );
    let plan = RewritePlan::new()
        .disable(bogus)
        .disable(out_of_range)
        .with_downtime(Downtime::None);
    let err = dynacut
        .customize(&mut server.kernel, &server.pids, &plan)
        .unwrap_err();
    assert!(!format!("{err}").is_empty());

    // The rollback is bit-exact: every process is back in its pre-freeze
    // scheduler state (not force-thawed to Runnable), memory, dirty
    // bitmaps and network state are untouched.
    assert_eq!(server.kernel.state_fingerprint(), pristine);
    for &pid in &server.pids {
        assert_ne!(
            server.kernel.process(pid).unwrap().state,
            dynacut_vm::ProcState::Frozen
        );
    }
    // …and the server is fully functional.
    let conn = server.kernel.client_connect(nginx::PORT).unwrap();
    let reply = server
        .kernel
        .client_request(conn, b"GET /alive\n", 5_000_000)
        .unwrap();
    assert_eq!(reply, nginx::RESP_200);
}

/// Multi-process rewriting at scale: with `workers=3`, a customization
/// touches all four processes ("To support multi-process applications,
/// DynaCut iterates through each process's memory space and updates the
/// corresponding code", §3.2.1).
#[test]
fn customize_reaches_every_worker() {
    let libc = dynacut_apps::libc::guest_libc();
    let exe = nginx::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(nginx::CONFIG_PATH, &nginx::config_file_with_workers(3));
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    kernel.spawn(&spec).unwrap();
    kernel.run_until_event(EVENT_READY, 200_000_000).unwrap();
    let pids = kernel.pids();
    assert_eq!(pids.len(), 4, "master + three workers");

    let mut dynacut = DynaCut::new(registry);
    let plan = RewritePlan::new()
        .disable(put_feature(&exe))
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let report = dynacut.customize(&mut kernel, &pids, &plan).unwrap();
    assert_eq!(report.handler_bases.len(), 4, "handler injected everywhere");
    assert_eq!(report.bytes_written, 4, "entry byte per process");

    // Three parallel connections, served by three different workers, all
    // answer 403 for PUT and 200 for GET.
    let conns: Vec<_> = (0..3)
        .map(|_| kernel.client_connect(nginx::PORT).unwrap())
        .collect();
    for &conn in &conns {
        kernel.client_send(conn, b"PUT /w data").unwrap();
    }
    kernel.run_for(5_000_000);
    for &conn in &conns {
        assert_eq!(kernel.client_recv(conn).unwrap(), nginx::RESP_403);
    }
    for &conn in &conns {
        kernel.client_send(conn, b"GET /w\n").unwrap();
    }
    kernel.run_for(5_000_000);
    for &conn in &conns {
        assert_eq!(kernel.client_recv(conn).unwrap(), nginx::RESP_200);
    }
    for &pid in &pids {
        assert!(kernel.exit_status(pid).is_none());
    }
}
