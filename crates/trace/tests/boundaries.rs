//! Boundary tests for the drcov field widths.
//!
//! drcov narrows block offsets to `u32` and module ids to `u16`. These
//! tests pin the contract at and around those limits: values that fit
//! round-trip losslessly, values that do not fit fail with a typed
//! [`TraceError`] instead of silently truncating (the aliasing bug that
//! would corrupt tracediff).

use dynacut_isa::{Assembler, BasicBlock, Insn, Reg};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind};
use dynacut_trace::{BlockRecord, ModuleRecord, TraceError, TraceLog, Tracer};
use dynacut_vm::{Kernel, LoadSpec, LoadedModule, Pid, Sysno};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::sync::Arc;

/// A minimal runnable executable (exit(0)) whose image we can clone and
/// distort for the tracer registration tests.
fn tiny_exe() -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Syscall);
    let mut builder = ModuleBuilder::new("tiny", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

fn module_table(count: usize) -> Vec<ModuleRecord> {
    (0..count)
        .map(|index| ModuleRecord {
            id: u16::try_from(index).expect("count fits u16 id space"),
            base: 0x1000 * index as u64,
            end: 0x1000 * index as u64 + 0x800,
            name: format!("mod{index}"),
        })
        .collect()
}

/// Offsets clustered on the `u32` boundary, with some arbitrary values.
fn arb_offset() -> impl Strategy<Value = u32> {
    (any::<u8>(), any::<u32>()).prop_map(|(selector, raw)| match selector % 5 {
        0 => u32::MAX,
        1 => u32::MAX - 1,
        2 => 0,
        3 => 1,
        _ => raw,
    })
}

/// Module ids clustered on the `u16` boundary.
fn arb_module_id() -> impl Strategy<Value = u16> {
    (any::<u8>(), any::<u16>()).prop_map(|(selector, raw)| match selector % 4 {
        0 => u16::MAX,
        1 => u16::MAX - 1,
        2 => 0,
        _ => raw,
    })
}

fn arb_block() -> impl Strategy<Value = BlockRecord> {
    (arb_module_id(), arb_offset(), 1..=4096u32).prop_map(|(module, offset, size)| BlockRecord {
        module,
        offset,
        size,
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any log whose offsets and ids sit at or around the drcov field
    /// boundaries must serialize and parse back to exactly itself.
    #[test]
    fn drcov_text_round_trips_at_field_boundaries(
        blocks in proptest::collection::btree_set(arb_block(), 0..24),
    ) {
        let log = TraceLog {
            // ids up to u16::MAX must resolve, so carry a full-width table
            // only when a block actually references the top of the space.
            modules: module_table(
                blocks
                    .iter()
                    .map(|b| usize::from(b.module) + 1)
                    .max()
                    .unwrap_or(1),
            ),
            blocks,
        };
        let text = log.to_drcov_text();
        let parsed = TraceLog::from_drcov_text(&text).unwrap();
        prop_assert_eq!(parsed, log);
    }

    /// Merging remapped blocks never changes offsets, only module ids —
    /// boundary offsets survive the union untouched.
    #[test]
    fn merge_preserves_boundary_offsets(
        offsets in proptest::collection::btree_set(arb_offset(), 1..12),
    ) {
        let mut target = TraceLog {
            modules: module_table(3),
            blocks: BTreeSet::new(),
        };
        let mut other = TraceLog::default();
        other.modules.push(ModuleRecord {
            id: 0,
            base: 0x5000,
            end: 0x5800,
            name: "extra".into(),
        });
        for offset in &offsets {
            other.blocks.insert(BlockRecord { module: 0, offset: *offset, size: 4 });
        }
        target.merge(&other).unwrap();
        let merged_offsets: BTreeSet<u32> = target
            .blocks
            .iter()
            .filter(|b| usize::from(b.module) == 3)
            .map(|b| b.offset)
            .collect();
        prop_assert_eq!(merged_offsets, offsets);
    }
}

#[test]
fn max_u32_offset_round_trips_exactly() {
    let mut log = TraceLog {
        modules: module_table(1),
        blocks: BTreeSet::new(),
    };
    log.blocks.insert(BlockRecord {
        module: 0,
        offset: u32::MAX,
        size: 1,
    });
    let parsed = TraceLog::from_drcov_text(&log.to_drcov_text()).unwrap();
    assert_eq!(parsed, log);
    assert_eq!(parsed.blocks.iter().next().unwrap().offset, u32::MAX);
}

/// Regression: before the fix, `0x1_0000_0000` parsed `as u32` into
/// offset 0 — aliasing the block at the module's entry point.
#[test]
fn parse_rejects_offset_past_u32() {
    let mut log = TraceLog {
        modules: module_table(1),
        blocks: BTreeSet::new(),
    };
    log.blocks.insert(BlockRecord {
        module: 0,
        offset: 0,
        size: 4,
    });
    let mut text = log.to_drcov_text();
    text.push_str("module[  0]: 0x100000000,   4\n");
    match TraceLog::from_drcov_text(&text) {
        Err(TraceError::OffsetOverflow { module, offset }) => {
            assert_eq!(module, "mod0");
            assert_eq!(offset, 0x1_0000_0000);
        }
        other => panic!("expected OffsetOverflow, got {other:?}"),
    }
}

#[test]
fn parse_reports_unknown_module_by_id_on_overflow() {
    let text = "DRCOV VERSION: 2\n\
                Module Table: version 2, count 0\n\
                Columns: id, base, end, path\n\
                BB Table: 1 bbs\n\
                module[  7]: 0x100000000,   4\n";
    match TraceLog::from_drcov_text(text) {
        Err(TraceError::OffsetOverflow { module, .. }) => assert_eq!(module, "id 7"),
        other => panic!("expected OffsetOverflow, got {other:?}"),
    }
}

/// A module table of exactly 65 536 entries uses the full `u16` id space
/// and still merges; one more module is a typed error that leaves the
/// target untouched.
#[test]
fn merge_at_and_past_the_u16_module_limit() {
    let full_count = usize::from(u16::MAX) + 1;
    let mut target = TraceLog {
        modules: module_table(full_count - 1),
        blocks: BTreeSet::new(),
    };

    let mut last = TraceLog::default();
    last.modules.push(ModuleRecord {
        id: 0,
        base: 0xF000_0000,
        end: 0xF000_0800,
        name: "final".into(),
    });
    last.blocks.insert(BlockRecord {
        module: 0,
        offset: u32::MAX,
        size: 8,
    });
    target.merge(&last).unwrap();
    assert_eq!(target.modules.len(), full_count);
    assert_eq!(target.module("final").unwrap().id, u16::MAX);
    assert!(target.blocks.contains(&BlockRecord {
        module: u16::MAX,
        offset: u32::MAX,
        size: 8,
    }));

    // Regression: before the fix, the 65 537th module's id wrapped to 0
    // and its blocks were silently credited to module 0.
    let before = target.clone();
    let mut overflow = TraceLog::default();
    overflow.modules.push(ModuleRecord {
        id: 0,
        base: 0xF100_0000,
        end: 0xF100_0800,
        name: "one_too_many".into(),
    });
    overflow.blocks.insert(BlockRecord {
        module: 0,
        offset: 0x10,
        size: 4,
    });
    match target.merge(&overflow) {
        Err(TraceError::ModuleLimit { count }) => assert_eq!(count, full_count + 1),
        other => panic!("expected ModuleLimit, got {other:?}"),
    }
    assert_eq!(target, before, "failed merge must not mutate the target");
}

#[test]
fn merge_of_known_modules_is_exempt_from_the_limit() {
    let full_count = usize::from(u16::MAX) + 1;
    let mut target = TraceLog {
        modules: module_table(full_count),
        blocks: BTreeSet::new(),
    };
    // Known names register nothing new, so a full table merges fine.
    let mut again = TraceLog::default();
    again.modules.push(ModuleRecord {
        id: 0,
        ..target.modules[full_count - 1].clone()
    });
    again.blocks.insert(BlockRecord {
        module: 0,
        offset: 0x20,
        size: 4,
    });
    target.merge(&again).unwrap();
    assert_eq!(target.modules.len(), full_count);
    assert!(target.blocks.contains(&BlockRecord {
        module: u16::MAX,
        offset: 0x20,
        size: 4,
    }));
}

/// Regression for the tracer half: a loaded module carrying a block whose
/// module-relative address exceeds `u32` must be rejected at `track()`
/// time — before the fix it registered fine and the offset wrapped when
/// the block executed.
#[test]
fn track_rejects_module_with_block_past_4gib() {
    let exe = tiny_exe();
    let mut kernel = Kernel::new();
    let tracer = Tracer::install(&mut kernel);
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();

    let proc = kernel.process_mut(pid).unwrap();
    let mut huge = (*proc.modules[0].image).clone();
    huge.name = "huge".into();
    huge.blocks.push(BasicBlock::new(u64::from(u32::MAX) + 1, 4));
    proc.modules.push(LoadedModule {
        image: Arc::new(huge),
        base: 0x7000_0000,
    });

    match tracer.track(&kernel, pid) {
        Err(TraceError::OffsetOverflow { module, offset }) => {
            assert_eq!(module, "huge");
            assert_eq!(offset, u64::from(u32::MAX) + 1);
        }
        other => panic!("expected OffsetOverflow, got {other:?}"),
    }
    // All-or-nothing: the valid module alongside it was not registered
    // either, and nothing is tracked for the pid.
    let log = tracer.snapshot();
    assert!(log.modules.is_empty(), "failed track must not register modules");
    assert!(log.blocks.is_empty());
}

#[test]
fn track_boundary_block_at_exactly_u32_max_is_accepted() {
    let exe = tiny_exe();
    let mut kernel = Kernel::new();
    let tracer = Tracer::install(&mut kernel);
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();

    let proc = kernel.process_mut(pid).unwrap();
    let mut wide = (*proc.modules[0].image).clone();
    wide.name = "wide".into();
    wide.blocks.push(BasicBlock::new(u64::from(u32::MAX), 1));
    proc.modules.push(LoadedModule {
        image: Arc::new(wide),
        base: 0x7000_0000,
    });

    tracer.track(&kernel, pid).unwrap();
    assert!(tracer.snapshot().module("wide").is_some());
}

#[test]
fn track_rejects_module_table_past_u16_limit() {
    let exe = tiny_exe();
    let mut kernel = Kernel::new();
    let tracer = Tracer::install(&mut kernel);
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();

    let proc = kernel.process_mut(pid).unwrap();
    let base_image = (*proc.modules[0].image).clone();
    // 1 real module + 65 536 synthetic ones = 65 537 names to register.
    for index in 0..=usize::from(u16::MAX) {
        let mut lib = base_image.clone();
        lib.name = format!("lib{index}");
        proc.modules.push(LoadedModule {
            image: Arc::new(lib),
            base: 0x7000_0000 + 0x1000 * index as u64,
        });
    }

    match tracer.track(&kernel, pid) {
        Err(TraceError::ModuleLimit { count }) => {
            assert_eq!(count, usize::from(u16::MAX) + 2);
        }
        other => panic!("expected ModuleLimit, got {other:?}"),
    }
    assert!(tracer.snapshot().modules.is_empty());
}

#[test]
fn track_missing_pid_is_a_vm_error() {
    let mut kernel = Kernel::new();
    let tracer = Tracer::install(&mut kernel);
    match tracer.track(&kernel, Pid(999)) {
        Err(TraceError::Vm(_)) => {}
        other => panic!("expected Vm error, got {other:?}"),
    }
}
