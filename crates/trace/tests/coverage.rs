//! Live-kernel coverage collection tests.

use dynacut_isa::{Assembler, Cond, Insn, Reg};
use dynacut_obj::{Image, ModuleBuilder, ObjectKind};
use dynacut_trace::{InitDetector, Tracer};
use dynacut_vm::{Kernel, LoadSpec, Sysno, EXE_BASE};

/// A program with an init phase (touches `init_only`), then an event-ish
/// loop that calls `hot` a few times, never calling `cold`.
fn phased_program() -> Image {
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.call("init_only");
    asm.push(Insn::Movi(Reg::R0, Sysno::EmitEvent as u64));
    asm.push(Insn::Movi(Reg::R1, 1)); // "initialized"
    asm.push(Insn::Syscall);
    // Idle between phases, like a server waiting for its first request —
    // gives the host a deterministic window to nudge the tracer.
    asm.push(Insn::Movi(Reg::R0, Sysno::Nanosleep as u64));
    asm.push(Insn::Movi(Reg::R1, 100_000));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R9, 3));
    asm.label("loop");
    asm.call("hot");
    asm.push(Insn::Addi(Reg::R9, -1));
    asm.push(Insn::Cmpi(Reg::R9, 0));
    asm.jcc(Cond::Ne, "loop");
    asm.push(Insn::Movi(Reg::R0, Sysno::Exit as u64));
    asm.push(Insn::Movi(Reg::R1, 0));
    asm.push(Insn::Syscall);
    asm.func("init_only");
    asm.push(Insn::Movi(Reg::R1, 111));
    asm.push(Insn::Ret);
    asm.func("hot");
    asm.push(Insn::Movi(Reg::R2, 222));
    asm.push(Insn::Ret);
    asm.func("cold");
    asm.push(Insn::Movi(Reg::R3, 333));
    asm.push(Insn::Ret);
    let mut builder = ModuleBuilder::new("phased", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.entry("_start");
    builder.link(&[]).unwrap()
}

#[test]
fn coverage_distinguishes_init_hot_and_cold() {
    let exe = phased_program();
    let init_blocks: Vec<_> = exe.blocks_of_function("init_only");
    let hot_blocks: Vec<_> = exe.blocks_of_function("hot");
    let cold_blocks: Vec<_> = exe.blocks_of_function("cold");
    assert!(!init_blocks.is_empty() && !hot_blocks.is_empty() && !cold_blocks.is_empty());

    let mut kernel = Kernel::new();
    let tracer = Tracer::install(&mut kernel);
    let pid = kernel.spawn(&LoadSpec::exe_only(exe.clone())).unwrap();
    tracer.track(&kernel, pid).unwrap();

    // Run until the init marker, then nudge.
    kernel.run_until_event(1, 1_000_000).expect("init marker");
    let init_cov = tracer.nudge();
    // Run to completion; dump serving coverage.
    kernel.run_until_exit(pid, 1_000_000).expect("exits");
    let serving_cov = tracer.snapshot();

    let init_set = init_cov.blocks_of("phased");
    let serving_set = serving_cov.blocks_of("phased");

    // init_only executed before the nudge, not after.
    for block in &init_blocks {
        assert!(init_set.contains(block), "init block missing from init phase");
        assert!(
            !serving_set.contains(block),
            "init block wrongly in serving phase"
        );
    }
    // hot executed after the nudge.
    for block in &hot_blocks {
        assert!(serving_set.contains(block), "hot block missing");
    }
    // cold never executed.
    for block in &cold_blocks {
        assert!(!init_set.contains(block));
        assert!(!serving_set.contains(block));
    }
}

#[test]
fn coverage_counts_are_deduplicated() {
    let exe = phased_program();
    let mut kernel = Kernel::new();
    let tracer = Tracer::install(&mut kernel);
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    tracer.track(&kernel, pid).unwrap();
    kernel.run_until_exit(pid, 1_000_000).unwrap();
    let log = tracer.snapshot();
    // `hot` ran three times but its block appears once.
    let hot_offset = {
        let exe = &kernel.process(pid).unwrap().modules.last().unwrap().image;
        exe.symbols["hot"].offset
    };
    let count = log
        .blocks_of("phased")
        .iter()
        .filter(|b| b.addr == hot_offset)
        .count();
    assert_eq!(count, 1);
}

#[test]
fn module_table_records_load_addresses() {
    let exe = phased_program();
    let mut kernel = Kernel::new();
    let tracer = Tracer::install(&mut kernel);
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    tracer.track(&kernel, pid).unwrap();
    kernel.run_until_exit(pid, 1_000_000).unwrap();
    let log = tracer.snapshot();
    let module = log.module("phased").expect("module registered");
    assert_eq!(module.base, EXE_BASE);
    assert!(module.end > module.base);
}

#[test]
fn drcov_text_round_trips_live_coverage() {
    let exe = phased_program();
    let mut kernel = Kernel::new();
    let tracer = Tracer::install(&mut kernel);
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    tracer.track(&kernel, pid).unwrap();
    kernel.run_until_exit(pid, 1_000_000).unwrap();
    let log = tracer.snapshot();
    let parsed = dynacut_trace::TraceLog::from_drcov_text(&log.to_drcov_text()).unwrap();
    assert_eq!(parsed, log);
}

#[test]
fn first_accept_detector_spots_server_transition() {
    // Server program: bind/listen/accept.
    let mut asm = Assembler::new();
    asm.func("_start");
    asm.push(Insn::Movi(Reg::R0, Sysno::Socket as u64));
    asm.push(Insn::Syscall);
    asm.push(Insn::Mov(Reg::R10, Reg::R0));
    asm.push(Insn::Movi(Reg::R0, Sysno::Bind as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Movi(Reg::R2, 7777));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Listen as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    asm.push(Insn::Movi(Reg::R0, Sysno::Accept as u64));
    asm.push(Insn::Mov(Reg::R1, Reg::R10));
    asm.push(Insn::Syscall);
    let mut builder = ModuleBuilder::new("mini_server", ObjectKind::Executable);
    builder.text(asm.finish().unwrap());
    builder.entry("_start");
    let exe = builder.link(&[]).unwrap();

    let mut kernel = Kernel::new();
    let tracer = Tracer::install(&mut kernel);
    let pid = kernel.spawn(&LoadSpec::exe_only(exe)).unwrap();
    tracer.track(&kernel, pid).unwrap();
    kernel.run_for(100_000);
    let observations = tracer.drain_syscalls();
    let index = InitDetector::FirstAccept
        .detect(&observations, pid)
        .expect("accept observed");
    // Everything before the accept is setup.
    assert!(observations[..index]
        .iter()
        .any(|&(_, nr)| nr == Sysno::Listen as u64));
}
