//! # dynacut-trace — drcov-style execution-trace collection
//!
//! DynaCut identifies undesired code from **execution traces of basic
//! blocks** recorded as `<BB addr, BB size>` tuples under DynamoRIO's
//! `drcov` tool, extended with a *nudge* that dumps the coverage collected
//! so far (the initialization phase) and clears the code cache (paper
//! §3.1, §3.3). This crate reproduces that tooling for the DCVM:
//!
//! * [`Tracer`] — an execution [`Hook`] that maintains a per-process
//!   module table and a deduplicated set of executed basic blocks, with a
//!   basic-block cache so the per-instruction cost is one range check,
//! * [`Tracer::nudge`] — dumps the current coverage as a [`TraceLog`] and
//!   resets the cache, exactly the init/serving split protocol,
//! * [`TraceLog`] — the drcov log: a module table plus block records,
//!   with a textual serialisation ([`TraceLog::to_drcov_text`]) modelled
//!   on the drcov format, and
//! * [`InitDetector`] — the paper's future-work idea ("monitor specific
//!   system calls to determine the end of the initialization phase"),
//!   implemented as a syscall-quiescence watcher.
//!
//! [`Hook`]: dynacut_vm::Hook

mod detector;
mod log;
mod tracer;

pub use detector::InitDetector;
pub use log::{BlockRecord, ModuleRecord, TraceError, TraceLog};
pub use tracer::{Tracer, TracerHook};
