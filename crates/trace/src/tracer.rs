//! The coverage tracer hook.

use crate::log::{BlockRecord, ModuleRecord, TraceError, TraceLog};
use dynacut_isa::BasicBlock;
use dynacut_vm::{Hook, Kernel, Pid};
use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;

#[derive(Debug, Clone)]
struct ModuleSpan {
    id: u16,
    base: u64,
    text_end: u64,
    /// Module-relative blocks, sorted by address.
    blocks: Vec<BasicBlock>,
}

#[derive(Debug, Default)]
struct State {
    /// Global module table (shared across processes; identified by name).
    modules: Vec<ModuleRecord>,
    /// Per-process text spans for fast pc → module lookup.
    spans: BTreeMap<Pid, Vec<ModuleSpan>>,
    /// Executed blocks since the last nudge.
    seen: BTreeSet<BlockRecord>,
    /// Per-process current-block cache: the half-open pc range of the
    /// block the process is executing inside (drcov's code-cache trick).
    cache: BTreeMap<Pid, (u64, u64)>,
    /// Syscall numbers observed, with timestamps of the insn counter.
    syscall_watch: Vec<(Pid, u64)>,
}

impl State {
    fn record(&mut self, pid: Pid, pc: u64) {
        if let Some(&(start, end)) = self.cache.get(&pid) {
            if pc >= start && pc < end {
                return;
            }
        }
        let Some(spans) = self.spans.get(&pid) else {
            return;
        };
        let Some(span) = spans.iter().find(|s| pc >= s.base && pc < s.text_end) else {
            // Outside any tracked module (injected library, anon page):
            // invalidate the cache so we re-check next time.
            self.cache.remove(&pid);
            return;
        };
        let offset = pc - span.base;
        let index = match span.blocks.binary_search_by_key(&offset, |b| b.addr) {
            Ok(index) => index,
            Err(0) => {
                self.cache.remove(&pid);
                return;
            }
            Err(index) => index - 1,
        };
        let block = span.blocks[index];
        if !block.contains(offset) {
            self.cache.remove(&pid);
            return;
        }
        self.seen.insert(BlockRecord {
            module: span.id,
            offset: u32::try_from(block.addr).expect("offsets validated at track()"),
            size: block.size,
        });
        self.cache
            .insert(pid, (span.base + block.addr, span.base + block.range().end));
    }

    fn dump(&mut self, clear: bool) -> TraceLog {
        let log = TraceLog {
            modules: self.modules.clone(),
            blocks: self.seen.clone(),
        };
        if clear {
            self.seen.clear();
            self.cache.clear();
        }
        log
    }
}

/// The [`Hook`] half of the tracer; install with
/// [`Kernel::set_hook`].
#[derive(Debug)]
pub struct TracerHook {
    state: Rc<RefCell<State>>,
}

impl Hook for TracerHook {
    fn on_insn(&mut self, pid: Pid, pc: u64) {
        self.state.borrow_mut().record(pid, pc);
    }

    fn on_syscall(&mut self, pid: Pid, nr: u64) {
        self.state.borrow_mut().syscall_watch.push((pid, nr));
    }

    fn on_fork(&mut self, parent: Pid, child: Pid) {
        let mut state = self.state.borrow_mut();
        if let Some(spans) = state.spans.get(&parent).cloned() {
            state.spans.insert(child, spans);
        }
    }
}

/// The host-side half of the tracer: registration, nudges and dumps.
///
/// ```no_run
/// use dynacut_trace::Tracer;
/// use dynacut_vm::Kernel;
///
/// let mut kernel = Kernel::new();
/// let tracer = Tracer::install(&mut kernel);
/// // ... spawn a process, then:
/// // tracer.track(&kernel, pid)?;
/// // ... run the init phase, then the nudge:
/// // let init_coverage = tracer.nudge();
/// ```
#[derive(Debug, Clone)]
pub struct Tracer {
    state: Rc<RefCell<State>>,
}

impl Tracer {
    /// Creates a tracer and installs its hook into the kernel.
    pub fn install(kernel: &mut Kernel) -> Tracer {
        let state = Rc::new(RefCell::new(State::default()));
        kernel.set_hook(Box::new(TracerHook {
            state: Rc::clone(&state),
        }));
        Tracer { state }
    }

    /// Starts tracking a process: reads its loaded modules from the kernel
    /// and registers their text spans and block tables.
    ///
    /// Registration is all-or-nothing: every module is validated against
    /// the drcov field widths **before** any state is mutated, so a
    /// rejected call leaves the tracer exactly as it was.
    ///
    /// # Errors
    ///
    /// Fails with [`TraceError::Vm`] if the process does not exist, with
    /// [`TraceError::OffsetOverflow`] if any block's module-relative
    /// offset exceeds the drcov `u32` offset field (it would silently
    /// alias another block in the coverage log), and with
    /// [`TraceError::ModuleLimit`] if registration would overflow the
    /// `u16` module-id space.
    pub fn track(&self, kernel: &Kernel, pid: Pid) -> Result<(), TraceError> {
        let proc = kernel.process(pid)?;
        let mut state = self.state.borrow_mut();
        // Validate before mutating.
        let mut new_names = BTreeSet::new();
        for module in &proc.modules {
            let name = &module.image.name;
            if let Some(block) = module
                .image
                .blocks
                .iter()
                .find(|b| b.addr > u64::from(u32::MAX))
            {
                return Err(TraceError::OffsetOverflow {
                    module: name.clone(),
                    offset: block.addr,
                });
            }
            if !state.modules.iter().any(|m| &m.name == name) {
                new_names.insert(name.clone());
            }
        }
        let table_count = state.modules.len() + new_names.len();
        if table_count > usize::from(u16::MAX) + 1 {
            return Err(TraceError::ModuleLimit { count: table_count });
        }
        let mut spans = Vec::with_capacity(proc.modules.len());
        for module in &proc.modules {
            let name = &module.image.name;
            let id = match state.modules.iter().position(|m| &m.name == name) {
                Some(index) => u16::try_from(index).expect("table bounded above"),
                None => {
                    let id = u16::try_from(state.modules.len()).expect("table bounded above");
                    state.modules.push(ModuleRecord {
                        id,
                        base: module.base,
                        end: module.base + module.image.text.len() as u64,
                        name: name.clone(),
                    });
                    id
                }
            };
            spans.push(ModuleSpan {
                id,
                base: module.base,
                text_end: module.base + module.image.text.len() as u64,
                blocks: module.image.blocks.clone(),
            });
        }
        state.spans.insert(pid, spans);
        Ok(())
    }

    /// Dumps the coverage collected so far and clears the cache — the
    /// DynamoRIO-nudge protocol marking the end of the initialization
    /// phase (paper §3.1: "the tool dumps the execution trace collected so
    /// far … also clears the code cache and continues recording").
    pub fn nudge(&self) -> TraceLog {
        self.state.borrow_mut().dump(true)
    }

    /// Dumps the coverage collected so far without clearing.
    pub fn snapshot(&self) -> TraceLog {
        self.state.borrow_mut().dump(false)
    }

    /// Syscall observations drained for init-phase detection.
    pub fn drain_syscalls(&self) -> Vec<(Pid, u64)> {
        std::mem::take(&mut self.state.borrow_mut().syscall_watch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_state_with_module() -> State {
        let mut state = State::default();
        state.modules.push(ModuleRecord {
            id: 0,
            base: 0x1000,
            end: 0x1100,
            name: "m".into(),
        });
        state.spans.insert(
            Pid(1),
            vec![ModuleSpan {
                id: 0,
                base: 0x1000,
                text_end: 0x1100,
                blocks: vec![
                    BasicBlock::new(0x00, 0x10),
                    BasicBlock::new(0x10, 0x20),
                    BasicBlock::new(0x30, 0xD0),
                ],
            }],
        );
        state
    }

    #[test]
    fn record_dedups_within_block() {
        let mut state = make_state_with_module();
        state.record(Pid(1), 0x1000);
        state.record(Pid(1), 0x1004);
        state.record(Pid(1), 0x100F);
        assert_eq!(state.seen.len(), 1);
        state.record(Pid(1), 0x1010);
        assert_eq!(state.seen.len(), 2);
    }

    #[test]
    fn record_ignores_untracked_addresses() {
        let mut state = make_state_with_module();
        state.record(Pid(1), 0x9999_9999);
        state.record(Pid(2), 0x1000); // untracked pid
        assert!(state.seen.is_empty());
    }

    #[test]
    fn mid_block_entry_is_attributed_to_containing_block() {
        let mut state = make_state_with_module();
        state.record(Pid(1), 0x1018); // inside block 0x10+0x20
        assert!(state.seen.contains(&BlockRecord {
            module: 0,
            offset: 0x10,
            size: 0x20
        }));
    }

    #[test]
    fn nudge_clears_cache_and_seen() {
        let mut state = make_state_with_module();
        state.record(Pid(1), 0x1000);
        let log = state.dump(true);
        assert_eq!(log.block_count(), 1);
        assert!(state.seen.is_empty());
        // Re-entering the same block is recorded again post-nudge.
        state.record(Pid(1), 0x1000);
        assert_eq!(state.seen.len(), 1);
    }
}
