//! The drcov-style trace log format.

use dynacut_isa::BasicBlock;
use std::collections::BTreeSet;
use std::fmt;

/// One module row of the drcov module table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModuleRecord {
    /// Module id referenced by block records.
    pub id: u16,
    /// Load base address.
    pub base: u64,
    /// End of the module's text.
    pub end: u64,
    /// Module (binary) name.
    pub name: String,
}

/// One executed basic block: `<BB addr, BB size>` expressed
/// module-relative, as drcov does.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct BlockRecord {
    /// Index into the module table.
    pub module: u16,
    /// Offset of the block inside the module.
    pub offset: u32,
    /// Block size in bytes.
    pub size: u32,
}

/// Errors raised by the trace layer: drcov parsing, module registration
/// and block-offset validation.
///
/// The drcov format narrows module ids to `u16` and block offsets to
/// `u32`; anything that does not fit is a typed error here, never a
/// silent `as`-truncation (which would alias distinct blocks or modules
/// and corrupt tracediff).
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum TraceError {
    /// A drcov text log is malformed.
    Malformed(String),
    /// A block's module-relative offset exceeds the drcov `u32` offset
    /// field.
    OffsetOverflow {
        /// Module the block belongs to (name, or `id N` while parsing).
        module: String,
        /// The out-of-range offset.
        offset: u64,
    },
    /// Registering another module would overflow the `u16` id space.
    ModuleLimit {
        /// The module count that did not fit.
        count: usize,
    },
    /// The kernel rejected an operation (e.g. tracking a missing pid).
    Vm(dynacut_vm::VmError),
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Malformed(reason) => write!(f, "malformed drcov log: {reason}"),
            TraceError::OffsetOverflow { module, offset } => write!(
                f,
                "block offset {offset:#x} in module `{module}` exceeds the drcov u32 offset field"
            ),
            TraceError::ModuleLimit { count } => {
                write!(f, "module table of {count} entries exceeds the drcov u16 id space")
            }
            TraceError::Vm(err) => write!(f, "kernel error: {err}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Vm(err) => Some(err),
            _ => None,
        }
    }
}

impl From<dynacut_vm::VmError> for TraceError {
    fn from(err: dynacut_vm::VmError) -> Self {
        TraceError::Vm(err)
    }
}

/// A coverage log: module table plus the deduplicated set of executed
/// blocks.
///
/// ```
/// use dynacut_trace::{BlockRecord, ModuleRecord, TraceLog};
///
/// let mut log = TraceLog::default();
/// log.modules.push(ModuleRecord { id: 0, base: 0x40_0000, end: 0x40_1000, name: "app".into() });
/// log.blocks.insert(BlockRecord { module: 0, offset: 0x40, size: 12 });
/// let text = log.to_drcov_text();
/// assert_eq!(TraceLog::from_drcov_text(&text)?, log);
/// # Ok::<(), dynacut_trace::TraceError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceLog {
    /// Module table.
    pub modules: Vec<ModuleRecord>,
    /// Executed blocks (sorted, deduplicated).
    pub blocks: BTreeSet<BlockRecord>,
}

impl TraceLog {
    /// Number of distinct executed blocks.
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Total size in bytes of the executed blocks.
    pub fn covered_bytes(&self) -> u64 {
        self.blocks.iter().map(|b| u64::from(b.size)).sum()
    }

    /// The module record by name, if present.
    pub fn module(&self, name: &str) -> Option<&ModuleRecord> {
        self.modules.iter().find(|m| m.name == name)
    }

    /// Executed blocks of one module, as module-relative [`BasicBlock`]s.
    pub fn blocks_of(&self, name: &str) -> Vec<BasicBlock> {
        let Some(module) = self.module(name) else {
            return Vec::new();
        };
        self.blocks
            .iter()
            .filter(|b| b.module == module.id)
            .map(|b| BasicBlock::new(u64::from(b.offset), b.size))
            .collect()
    }

    /// Merges another log into this one (set union). Module identity is by
    /// name; ids are remapped as needed. This is the paper's "merge
    /// multiple trace files of different requests".
    ///
    /// # Errors
    ///
    /// Fails with [`TraceError::ModuleLimit`] if the union would not fit
    /// the `u16` module-id space; `self` is untouched in that case.
    pub fn merge(&mut self, other: &TraceLog) -> Result<(), TraceError> {
        // Validate before mutating: the merge is all-or-nothing.
        let new_names: BTreeSet<&str> = other
            .modules
            .iter()
            .map(|m| m.name.as_str())
            .filter(|name| !self.modules.iter().any(|m| &m.name == name))
            .collect();
        let merged_count = self.modules.len() + new_names.len();
        if merged_count > usize::from(u16::MAX) + 1 {
            return Err(TraceError::ModuleLimit {
                count: merged_count,
            });
        }
        let mut remap = vec![0u16; other.modules.len()];
        for module in &other.modules {
            let id = match self.modules.iter().position(|m| m.name == module.name) {
                Some(index) => u16::try_from(index).expect("table bounded above"),
                None => {
                    let id = u16::try_from(self.modules.len()).expect("table bounded above");
                    self.modules.push(ModuleRecord {
                        id,
                        ..module.clone()
                    });
                    id
                }
            };
            remap[module.id as usize] = id;
        }
        for block in &other.blocks {
            self.blocks.insert(BlockRecord {
                module: remap[block.module as usize],
                ..*block
            });
        }
        Ok(())
    }

    /// Serialises in a drcov-like text format.
    pub fn to_drcov_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "DRCOV VERSION: 2");
        let _ = writeln!(out, "Module Table: version 2, count {}", self.modules.len());
        let _ = writeln!(out, "Columns: id, base, end, path");
        for module in &self.modules {
            let _ = writeln!(
                out,
                "{:3}, {:#018x}, {:#018x}, {}",
                module.id, module.base, module.end, module.name
            );
        }
        let _ = writeln!(out, "BB Table: {} bbs", self.blocks.len());
        for block in &self.blocks {
            let _ = writeln!(
                out,
                "module[{:3}]: {:#010x}, {:3}",
                block.module, block.offset, block.size
            );
        }
        out
    }

    /// Parses a log produced by [`TraceLog::to_drcov_text`].
    ///
    /// # Errors
    ///
    /// Fails with [`TraceError`] on malformed input.
    pub fn from_drcov_text(text: &str) -> Result<TraceLog, TraceError> {
        let mut lines = text.lines();
        let header = lines.next().ok_or(TraceError::Malformed("empty log".into()))?;
        if !header.starts_with("DRCOV VERSION") {
            return Err(TraceError::Malformed("missing DRCOV header".into()));
        }
        let module_header = lines.next().ok_or(TraceError::Malformed("missing module table".into()))?;
        let count: usize = module_header
            .rsplit(' ')
            .next()
            .and_then(|s| s.parse().ok())
            .ok_or(TraceError::Malformed("bad module count".into()))?;
        let _columns = lines.next();
        let mut modules = Vec::with_capacity(count);
        for _ in 0..count {
            let line = lines.next().ok_or(TraceError::Malformed("truncated module table".into()))?;
            let mut fields = line.splitn(4, ',').map(str::trim);
            let id: u16 = fields
                .next()
                .and_then(|s| s.parse().ok())
                .ok_or(TraceError::Malformed(format!("bad module id in `{line}`")))?;
            let base = parse_hex(fields.next().ok_or(TraceError::Malformed("missing base".into()))?)?;
            let end = parse_hex(fields.next().ok_or(TraceError::Malformed("missing end".into()))?)?;
            let name = fields
                .next()
                .ok_or(TraceError::Malformed("missing name".into()))?
                .to_owned();
            modules.push(ModuleRecord {
                id,
                base,
                end,
                name,
            });
        }
        let bb_header = lines.next().ok_or(TraceError::Malformed("missing bb table".into()))?;
        if !bb_header.starts_with("BB Table") {
            return Err(TraceError::Malformed("missing BB table header".into()));
        }
        let mut blocks = BTreeSet::new();
        for line in lines {
            if line.trim().is_empty() {
                continue;
            }
            // module[  0]: 0x00000040,  12
            let rest = line
                .strip_prefix("module[")
                .ok_or(TraceError::Malformed(format!("bad bb line `{line}`")))?;
            let (id_str, rest) = rest
                .split_once("]:")
                .ok_or(TraceError::Malformed(format!("bad bb line `{line}`")))?;
            let module: u16 = id_str
                .trim()
                .parse()
                .map_err(|_| TraceError::Malformed(format!("bad module id `{id_str}`")))?;
            let (offset_str, size_str) = rest
                .split_once(',')
                .ok_or(TraceError::Malformed(format!("bad bb line `{line}`")))?;
            let raw_offset = parse_hex(offset_str.trim())?;
            let offset = u32::try_from(raw_offset).map_err(|_| TraceError::OffsetOverflow {
                module: modules
                    .iter()
                    .find(|m| m.id == module)
                    .map(|m| m.name.clone())
                    .unwrap_or_else(|| format!("id {module}")),
                offset: raw_offset,
            })?;
            let size: u32 = size_str
                .trim()
                .parse()
                .map_err(|_| TraceError::Malformed(format!("bad size `{size_str}`")))?;
            blocks.insert(BlockRecord {
                module,
                offset,
                size,
            });
        }
        Ok(TraceLog { modules, blocks })
    }
}

fn parse_hex(s: &str) -> Result<u64, TraceError> {
    let stripped = s
        .strip_prefix("0x")
        .ok_or(TraceError::Malformed(format!("`{s}` is not hex")))?;
    u64::from_str_radix(stripped, 16).map_err(|_| TraceError::Malformed(format!("`{s}` is not hex")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TraceLog {
        let mut log = TraceLog {
            modules: vec![
                ModuleRecord {
                    id: 0,
                    base: 0x40_0000,
                    end: 0x40_1000,
                    name: "app".into(),
                },
                ModuleRecord {
                    id: 1,
                    base: 0x7000_0000_0000,
                    end: 0x7000_0000_1000,
                    name: "libc".into(),
                },
            ],
            blocks: BTreeSet::new(),
        };
        log.blocks.insert(BlockRecord {
            module: 0,
            offset: 0x40,
            size: 12,
        });
        log.blocks.insert(BlockRecord {
            module: 1,
            offset: 0x0,
            size: 5,
        });
        log
    }

    #[test]
    fn text_round_trip() {
        let log = sample();
        let text = log.to_drcov_text();
        let parsed = TraceLog::from_drcov_text(&text).unwrap();
        assert_eq!(parsed, log);
    }

    #[test]
    fn merge_unions_and_remaps_modules() {
        let mut a = sample();
        let mut b = TraceLog::default();
        b.modules.push(ModuleRecord {
            id: 0,
            base: 0x7000_0000_0000,
            end: 0x7000_0000_1000,
            name: "libc".into(),
        });
        b.blocks.insert(BlockRecord {
            module: 0,
            offset: 0x100,
            size: 7,
        });
        a.merge(&b).unwrap();
        assert_eq!(a.modules.len(), 2, "libc not duplicated");
        assert_eq!(a.block_count(), 3);
        // The libc block from `b` was remapped to module id 1.
        assert!(a.blocks.contains(&BlockRecord {
            module: 1,
            offset: 0x100,
            size: 7
        }));
    }

    #[test]
    fn merge_is_idempotent() {
        let mut a = sample();
        let before = a.clone();
        let copy = a.clone();
        a.merge(&copy).unwrap();
        assert_eq!(a, before);
    }

    #[test]
    fn blocks_of_filters_by_module() {
        let log = sample();
        let app_blocks = log.blocks_of("app");
        assert_eq!(app_blocks, vec![BasicBlock::new(0x40, 12)]);
        assert!(log.blocks_of("missing").is_empty());
    }

    #[test]
    fn covered_bytes_sums_sizes() {
        assert_eq!(sample().covered_bytes(), 17);
    }

    #[test]
    fn malformed_logs_are_rejected() {
        assert!(TraceLog::from_drcov_text("").is_err());
        assert!(TraceLog::from_drcov_text("garbage\n").is_err());
        let mut text = sample().to_drcov_text();
        text.push_str("module[ 0]: nonsense\n");
        assert!(TraceLog::from_drcov_text(&text).is_err());
    }
}
