//! Automatic initialization-end detection.
//!
//! The paper's workflow asks the *end-user* to nudge the tracer when the
//! server has initialized (§3.1), and proposes syscall monitoring as the
//! fully-automatic alternative (§5, future work). Both are available
//! here: the manual path is [`Tracer::nudge`](crate::Tracer::nudge); this
//! module implements the automatic one.

use dynacut_vm::{Pid, Sysno};

/// Detects the initialization → serving transition of a server process.
#[derive(Debug, Clone)]
pub enum InitDetector {
    /// Init ends when the process first enters a blocking `accept` —
    /// the syscall signature of an event loop starting (the analogue of
    /// Nginx's `ngx_worker_process_cycle()` / Lighttpd's
    /// `server_main_loop()` transition points cited from Ghavamnia et
    /// al.).
    FirstAccept,
    /// Init ends when the process has issued no *setup* syscalls
    /// (`open`, `mmap`, `fork`, `sigaction`, `bind`, `listen`) within the
    /// last `window` observed syscalls — syscall quiescence.
    SyscallQuiescence {
        /// How many consecutive non-setup syscalls count as quiescent.
        window: usize,
    },
}

impl InitDetector {
    /// Scans a syscall observation stream `(pid, syscall number)` and
    /// returns the index at which the given process finished
    /// initializing, if detectable.
    pub fn detect(&self, observations: &[(Pid, u64)], pid: Pid) -> Option<usize> {
        match self {
            InitDetector::FirstAccept => observations
                .iter()
                .position(|&(p, nr)| p == pid && nr == Sysno::Accept as u64),
            InitDetector::SyscallQuiescence { window } => {
                let setup = [
                    Sysno::Open as u64,
                    Sysno::Mmap as u64,
                    Sysno::Fork as u64,
                    Sysno::Sigaction as u64,
                    Sysno::Bind as u64,
                    Sysno::Listen as u64,
                ];
                let mine: Vec<(usize, u64)> = observations
                    .iter()
                    .enumerate()
                    .filter(|(_, &(p, _))| p == pid)
                    .map(|(i, &(_, nr))| (i, nr))
                    .collect();
                let mut quiet = 0usize;
                for &(index, nr) in &mine {
                    if setup.contains(&nr) {
                        quiet = 0;
                    } else {
                        quiet += 1;
                        if quiet >= *window {
                            return Some(index);
                        }
                    }
                }
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_accept_finds_the_event_loop() {
        let obs = vec![
            (Pid(1), Sysno::Open as u64),
            (Pid(1), Sysno::Bind as u64),
            (Pid(2), Sysno::Accept as u64), // other pid
            (Pid(1), Sysno::Listen as u64),
            (Pid(1), Sysno::Accept as u64),
        ];
        assert_eq!(InitDetector::FirstAccept.detect(&obs, Pid(1)), Some(4));
        assert_eq!(InitDetector::FirstAccept.detect(&obs, Pid(3)), None);
    }

    #[test]
    fn quiescence_requires_a_full_window() {
        let obs = vec![
            (Pid(1), Sysno::Open as u64),
            (Pid(1), Sysno::Read as u64),
            (Pid(1), Sysno::Write as u64),
            (Pid(1), Sysno::Mmap as u64), // setup again: reset
            (Pid(1), Sysno::Read as u64),
            (Pid(1), Sysno::Write as u64),
            (Pid(1), Sysno::Read as u64),
        ];
        let detector = InitDetector::SyscallQuiescence { window: 3 };
        assert_eq!(detector.detect(&obs, Pid(1)), Some(6));
        let strict = InitDetector::SyscallQuiescence { window: 4 };
        assert_eq!(strict.detect(&obs, Pid(1)), None);
    }
}
