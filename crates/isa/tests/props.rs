//! Property tests for the DCVM instruction set (DESIGN.md §5 invariants).

use dynacut_isa::{
    coalesce_blocks, decode, decode_all, encode, encode_into, Assembler, BasicBlock, Cond, Insn,
    Reg, Width, TRAP_OPCODE,
};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::try_from(i).expect("in range"))
}

fn arb_width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::B1),
        Just(Width::B2),
        Just(Width::B4),
        Just(Width::B8)
    ]
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    proptest::sample::select(Cond::ALL.to_vec())
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    prop_oneof![
        Just(Insn::Nop),
        (arb_reg(), any::<u64>()).prop_map(|(r, imm)| Insn::Movi(r, imm)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Mov(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Add(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Sub(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Mul(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Divu(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Modu(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::And(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Or(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Xor(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Shl(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Shr(a, b)),
        (arb_reg(), any::<i32>()).prop_map(|(r, imm)| Insn::Addi(r, imm)),
        (arb_reg(), any::<i32>()).prop_map(|(r, imm)| Insn::Muli(r, imm)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::Cmp(a, b)),
        (arb_reg(), any::<i32>()).prop_map(|(r, imm)| Insn::Cmpi(r, imm)),
        (arb_reg(), any::<i32>()).prop_map(|(r, d)| Insn::Lea(r, d)),
        (arb_width(), arb_reg(), arb_reg(), any::<i32>())
            .prop_map(|(w, d, b, disp)| Insn::Ld(w, d, b, disp)),
        (arb_width(), arb_reg(), any::<i32>(), arb_reg())
            .prop_map(|(w, b, disp, s)| Insn::St(w, b, disp, s)),
        any::<i32>().prop_map(Insn::Jmp),
        (arb_cond(), any::<i32>()).prop_map(|(c, d)| Insn::Jcc(c, d)),
        arb_reg().prop_map(Insn::Jmpr),
        any::<i32>().prop_map(Insn::Call),
        arb_reg().prop_map(Insn::Callr),
        Just(Insn::Ret),
        arb_reg().prop_map(Insn::Push),
        arb_reg().prop_map(Insn::Pop),
        Just(Insn::Syscall),
        Just(Insn::Halt),
        Just(Insn::Trap),
    ]
}

proptest! {
    /// Encode→decode is the identity and the length always matches.
    #[test]
    fn encode_decode_round_trip(insn in arb_insn()) {
        let bytes = encode(&insn);
        prop_assert_eq!(bytes.len(), insn.len());
        let (decoded, len) = decode(&bytes, 0).expect("own encoding decodes");
        prop_assert_eq!(decoded, insn);
        prop_assert_eq!(len, insn.len());
    }

    /// Streams of instructions round-trip through decode_all.
    #[test]
    fn stream_round_trip(insns in proptest::collection::vec(arb_insn(), 0..64)) {
        let mut bytes = Vec::new();
        for insn in &insns {
            encode_into(insn, &mut bytes);
        }
        let decoded = decode_all(&bytes).expect("own encoding decodes");
        let got: Vec<Insn> = decoded.into_iter().map(|(_, i)| i).collect();
        prop_assert_eq!(got, insns);
    }

    /// Decoding never reads past the declared length: truncating any
    /// encoding by one byte yields TruncatedInsn for multi-byte
    /// instructions, and single-byte instructions always decode.
    #[test]
    fn truncation_is_detected(insn in arb_insn()) {
        let bytes = encode(&insn);
        if bytes.len() > 1 {
            let short = &bytes[..bytes.len() - 1];
            prop_assert!(decode(short, 0).is_err());
        } else {
            prop_assert!(decode(&bytes, 0).is_ok());
        }
    }

    /// 0xCC decodes to TRAP at any offset of any buffer.
    #[test]
    fn trap_decodes_anywhere(prefix in proptest::collection::vec(any::<u8>(), 0..32)) {
        let mut bytes = prefix.clone();
        bytes.push(TRAP_OPCODE);
        let (insn, len) = decode(&bytes, prefix.len()).expect("trap always decodes");
        prop_assert_eq!(insn, Insn::Trap);
        prop_assert_eq!(len, 1);
    }

    /// Assembler block metadata partitions the text: disjoint, sorted,
    /// exhaustive, and every block starts at an instruction boundary.
    #[test]
    fn assembler_blocks_partition_text(
        insns in proptest::collection::vec(arb_insn(), 1..48),
        label_points in proptest::collection::vec(any::<proptest::sample::Index>(), 0..6),
    ) {
        let mut asm = Assembler::new();
        let mut wanted_labels = std::collections::BTreeSet::new();
        for index in &label_points {
            wanted_labels.insert(index.index(insns.len()));
        }
        for (i, insn) in insns.iter().enumerate() {
            if wanted_labels.contains(&i) {
                asm.label(&format!("l{i}"));
            }
            asm.push(*insn);
        }
        let text = asm.finish().expect("assembly succeeds");

        let boundaries: std::collections::BTreeSet<u64> = decode_all(&text.bytes)
            .expect("valid stream")
            .iter()
            .map(|(off, _)| *off as u64)
            .collect();

        let mut cursor = 0u64;
        for block in &text.blocks {
            prop_assert_eq!(block.addr, cursor, "contiguous partition");
            prop_assert!(block.size > 0);
            prop_assert!(boundaries.contains(&block.addr), "starts at insn boundary");
            cursor = block.range().end;
        }
        prop_assert_eq!(cursor, text.bytes.len() as u64, "covers all text");
    }

    /// coalesce_blocks output is sorted, disjoint and covers exactly the
    /// union of the inputs.
    #[test]
    fn coalesce_covers_union(blocks in proptest::collection::vec(
        (0u64..10_000, 1u32..64).prop_map(|(a, s)| BasicBlock::new(a, s)),
        0..40,
    )) {
        let ranges = coalesce_blocks(&blocks);
        for pair in ranges.windows(2) {
            prop_assert!(pair[0].end < pair[1].start, "sorted and disjoint");
        }
        let in_union = |addr: u64| blocks.iter().any(|b| b.contains(addr));
        for range in &ranges {
            for addr in [range.start, range.end - 1] {
                prop_assert!(in_union(addr));
            }
        }
        for block in &blocks {
            prop_assert!(
                ranges.iter().any(|r| r.start <= block.addr && block.range().end <= r.end),
                "every block is inside one range"
            );
        }
    }
}
