//! Basic-block metadata.
//!
//! DynaCut's trace format, its `tracediff` analysis and its rewriter all
//! speak in `<BB addr, BB size>` tuples (paper §3.1); [`BasicBlock`] is that
//! tuple.

use std::fmt;
use std::ops::Range;

/// A basic block: a straight-line code sequence with no branches in except
/// to the entry and no branches out except at the exit (paper footnote 3).
///
/// Addresses are byte offsets — within a `.text` section at assembly time,
/// or absolute virtual addresses once a module is loaded.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BasicBlock {
    /// Address of the first instruction byte.
    pub addr: u64,
    /// Size of the block in bytes.
    pub size: u32,
}

impl BasicBlock {
    /// Creates a block from its address and size.
    pub fn new(addr: u64, size: u32) -> Self {
        BasicBlock { addr, size }
    }

    /// The half-open byte range `[addr, addr + size)` the block occupies.
    pub fn range(&self) -> Range<u64> {
        self.addr..self.addr + u64::from(self.size)
    }

    /// Whether `addr` falls inside this block.
    pub fn contains(&self, addr: u64) -> bool {
        self.range().contains(&addr)
    }

    /// This block shifted to a new base address, as happens when the module
    /// containing it is loaded at `base`.
    pub fn rebased(&self, base: u64) -> BasicBlock {
        BasicBlock {
            addr: self.addr + base,
            size: self.size,
        }
    }
}

impl fmt::Display for BasicBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bb {:#x}+{}", self.addr, self.size)
    }
}

/// Coalesces sorted, possibly-adjacent blocks into maximal contiguous byte
/// ranges.
///
/// The rewriter uses this to turn a long block list into few memory writes
/// (and, for page-unmap policies, into page ranges).
///
/// ```
/// use dynacut_isa::{coalesce_blocks, BasicBlock};
/// let blocks = [BasicBlock::new(0, 4), BasicBlock::new(4, 8), BasicBlock::new(100, 2)];
/// assert_eq!(coalesce_blocks(&blocks), vec![0..12, 100..102]);
/// ```
pub fn coalesce_blocks(blocks: &[BasicBlock]) -> Vec<Range<u64>> {
    let mut sorted: Vec<BasicBlock> = blocks.to_vec();
    sorted.sort();
    let mut out: Vec<Range<u64>> = Vec::new();
    for block in sorted {
        let range = block.range();
        match out.last_mut() {
            Some(last) if last.end >= range.start => {
                last.end = last.end.max(range.end);
            }
            _ => out.push(range),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_and_contains() {
        let block = BasicBlock::new(0x1000, 16);
        assert_eq!(block.range(), 0x1000..0x1010);
        assert!(block.contains(0x1000));
        assert!(block.contains(0x100F));
        assert!(!block.contains(0x1010));
        assert!(!block.contains(0xFFF));
    }

    #[test]
    fn rebase_shifts_only_the_address() {
        let block = BasicBlock::new(0x40, 8).rebased(0x40_0000);
        assert_eq!(block, BasicBlock::new(0x40_0040, 8));
    }

    #[test]
    fn coalesce_merges_adjacent_and_overlapping() {
        let blocks = [
            BasicBlock::new(10, 5),
            BasicBlock::new(0, 10),
            BasicBlock::new(12, 10),
            BasicBlock::new(40, 1),
        ];
        assert_eq!(coalesce_blocks(&blocks), vec![0..22, 40..41]);
    }

    #[test]
    fn coalesce_empty_input() {
        assert!(coalesce_blocks(&[]).is_empty());
    }

    #[test]
    fn display_shows_addr_and_size() {
        assert_eq!(BasicBlock::new(0x20, 3).to_string(), "bb 0x20+3");
    }
}
