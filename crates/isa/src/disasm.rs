//! Linear-sweep disassembler.

use crate::{decode, Insn, IsaError};

/// An iterator over `(offset, instruction)` pairs produced by [`disasm`].
#[derive(Debug, Clone)]
pub struct Disasm<'a> {
    bytes: &'a [u8],
    offset: usize,
    failed: bool,
}

impl<'a> Iterator for Disasm<'a> {
    type Item = Result<(usize, Insn), IsaError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed || self.offset >= self.bytes.len() {
            return None;
        }
        match decode(self.bytes, self.offset) {
            Ok((insn, len)) => {
                let at = self.offset;
                self.offset += len;
                Some(Ok((at, insn)))
            }
            Err(err) => {
                self.failed = true;
                Some(Err(err))
            }
        }
    }
}

/// Disassembles `bytes` as a contiguous instruction stream, yielding each
/// instruction with its offset. Iteration stops after the first error.
///
/// ```
/// use dynacut_isa::{disasm, encode_into, Insn, Reg};
/// let mut bytes = Vec::new();
/// encode_into(&Insn::Push(Reg::R1), &mut bytes);
/// encode_into(&Insn::Ret, &mut bytes);
/// let insns: Result<Vec<_>, _> = disasm(&bytes).collect();
/// assert_eq!(insns?, vec![(0, Insn::Push(Reg::R1)), (2, Insn::Ret)]);
/// # Ok::<(), dynacut_isa::IsaError>(())
/// ```
pub fn disasm(bytes: &[u8]) -> Disasm<'_> {
    Disasm {
        bytes,
        offset: 0,
        failed: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{encode_into, Reg};

    #[test]
    fn yields_offsets_and_instructions() {
        let mut bytes = Vec::new();
        encode_into(&Insn::Movi(Reg::R0, 5), &mut bytes);
        encode_into(&Insn::Trap, &mut bytes);
        let out: Vec<_> = disasm(&bytes).map(Result::unwrap).collect();
        assert_eq!(out, vec![(0, Insn::Movi(Reg::R0, 5)), (10, Insn::Trap)]);
    }

    #[test]
    fn stops_after_first_error() {
        let bytes = [0x00, 0xEE, 0x00, 0x00];
        let out: Vec<_> = disasm(&bytes).collect();
        assert_eq!(out.len(), 2);
        assert!(out[0].is_ok());
        assert!(out[1].is_err());
    }

    #[test]
    fn empty_input_yields_nothing() {
        assert_eq!(disasm(&[]).count(), 0);
    }
}
