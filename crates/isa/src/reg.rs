//! General-purpose register names.

use crate::IsaError;
use std::fmt;

/// One of the sixteen 64-bit general-purpose registers of the DCVM.
///
/// By software convention:
///
/// * `R0` carries the syscall number / first return value,
/// * `R1`–`R5` carry syscall and function call arguments,
/// * `R14` is the linker's scratch register (PLT stubs clobber it),
/// * `R15` is the stack pointer.
///
/// ```
/// use dynacut_isa::Reg;
/// assert_eq!(Reg::SP, Reg::R15);
/// assert_eq!(Reg::try_from(3u8)?, Reg::R3);
/// # Ok::<(), dynacut_isa::IsaError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    R0 = 0,
    R1 = 1,
    R2 = 2,
    R3 = 3,
    R4 = 4,
    R5 = 5,
    R6 = 6,
    R7 = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// The stack pointer alias (`R15`).
    pub const SP: Reg = Reg::R15;
    /// The linker scratch register alias (`R14`); PLT stubs clobber it.
    pub const LT: Reg = Reg::R14;

    /// All registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// The register's index in the machine register file, `0..=15`.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl TryFrom<u8> for Reg {
    type Error = IsaError;

    fn try_from(value: u8) -> Result<Self, Self::Error> {
        Reg::ALL
            .get(value as usize)
            .copied()
            .ok_or(IsaError::BadRegister(value))
    }
}

impl From<Reg> for u8 {
    fn from(value: Reg) -> Self {
        value as u8
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_registers() {
        for reg in Reg::ALL {
            let byte: u8 = reg.into();
            assert_eq!(Reg::try_from(byte).unwrap(), reg);
        }
    }

    #[test]
    fn out_of_range_register_is_rejected() {
        assert!(matches!(Reg::try_from(16), Err(IsaError::BadRegister(16))));
        assert!(matches!(
            Reg::try_from(255),
            Err(IsaError::BadRegister(255))
        ));
    }

    #[test]
    fn display_uses_lowercase_r() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::SP.to_string(), "r15");
    }

    #[test]
    fn aliases_point_at_documented_registers() {
        assert_eq!(Reg::SP.index(), 15);
        assert_eq!(Reg::LT.index(), 14);
    }
}
