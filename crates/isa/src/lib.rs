//! # dynacut-isa — the DCVM instruction set
//!
//! The DynaCut reproduction runs its guest programs on a small deterministic
//! virtual machine (the *DCVM*). This crate defines that machine's
//! instruction set architecture:
//!
//! * [`Reg`] — the sixteen general-purpose registers (`R15` doubles as the
//!   stack pointer by convention),
//! * [`Insn`] — every instruction, with a **variable-length** binary
//!   encoding ([`encode`]/[`decode`]) so that overwriting the *first byte*
//!   of a basic block with the one-byte [`Insn::Trap`] opcode (`0xCC`,
//!   deliberately the same byte as x86 `int3`) is a meaningful operation,
//! * [`Assembler`] — a label-based assembler that also records the
//!   [`BasicBlock`] layout of the text it emits, and
//! * [`disasm`] — a fallible linear-sweep disassembler.
//!
//! The variable-length encoding matters: DynaCut's two blocking policies
//! ("replace only the first byte" vs. "wipe the whole block") differ in
//! security exactly because an attacker can jump into the *middle* of a
//! partially-patched block. That distinction is reproducible here.
//!
//! ```
//! use dynacut_isa::{Assembler, Insn, Reg, TRAP_OPCODE};
//!
//! # fn main() -> Result<(), dynacut_isa::IsaError> {
//! let mut asm = Assembler::new();
//! asm.label("start");
//! asm.push(Insn::Movi(Reg::R0, 7));
//! asm.push(Insn::Trap);
//! let text = asm.finish()?;
//! assert_eq!(text.bytes[text.bytes.len() - 1], TRAP_OPCODE);
//! # Ok(())
//! # }
//! ```

mod asm;
mod block;
mod decode;
mod disasm;
mod encode;
mod error;
mod insn;
mod reg;

pub use asm::{AsmReloc, Assembler, FuncSpan, RelocKind, TextImage};
pub use block::{coalesce_blocks, BasicBlock};
pub use decode::{decode, decode_all};
pub use disasm::{disasm, Disasm};
pub use encode::{encode, encode_into};
pub use error::IsaError;
pub use insn::{Cond, Insn, Opcode, Width, MAX_INSN_LEN, TRAP_OPCODE};
pub use reg::Reg;
