//! Instruction definitions and static encoding metadata.

use crate::Reg;
use std::fmt;

/// The opcode byte of [`Insn::Trap`]: `0xCC`, the same value as the x86-64
/// `int3` breakpoint instruction that DynaCut writes over undesired basic
/// blocks. Executing it raises `SIGTRAP` in the DCVM kernel.
pub const TRAP_OPCODE: u8 = 0xCC;

/// The longest encoded instruction ([`Insn::Movi`]), in bytes. Fetch
/// paths can decode any instruction out of a fixed `[u8; MAX_INSN_LEN]`
/// buffer instead of allocating per fetch.
pub const MAX_INSN_LEN: usize = 10;

/// Memory access width for load/store instructions, in bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 1 byte.
    B1,
    /// 2 bytes.
    B2,
    /// 4 bytes.
    B4,
    /// 8 bytes.
    B8,
}

impl Width {
    /// The access width in bytes.
    pub fn bytes(self) -> usize {
        match self {
            Width::B1 => 1,
            Width::B2 => 2,
            Width::B4 => 4,
            Width::B8 => 8,
        }
    }
}

/// Branch condition, evaluated against the flags set by the most recent
/// `Cmp`/`Cmpi`.
///
/// Signed (`Lt`…`Ge`) and unsigned (`B`…`Ae`, x86 mnemonic style) variants
/// both exist because the guest applications model real bounds checks, and
/// signed/unsigned confusion is exactly how the modelled Redis CVEs
/// (integer overflow in `STRALGO LCS`) come about.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Cond {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below.
    B,
    /// Unsigned below-or-equal.
    Be,
    /// Unsigned above.
    A,
    /// Unsigned above-or-equal.
    Ae,
}

impl Cond {
    /// All conditions, in opcode order.
    pub const ALL: [Cond; 10] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::B,
        Cond::Be,
        Cond::A,
        Cond::Ae,
    ];
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mnemonic = match self {
            Cond::Eq => "e",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::Ae => "ae",
        };
        f.write_str(mnemonic)
    }
}

/// Symbolic names for every opcode byte of the DCVM.
///
/// This is primarily useful to tooling (disassembler output, decoder
/// diagnostics); most code works with [`Insn`] directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Opcode {
    Nop = 0x00,
    Movi = 0x01,
    Mov = 0x02,
    Add = 0x03,
    Sub = 0x04,
    Mul = 0x05,
    Divu = 0x06,
    Modu = 0x07,
    And = 0x08,
    Or = 0x09,
    Xor = 0x0A,
    Shl = 0x0B,
    Shr = 0x0C,
    Addi = 0x0D,
    Muli = 0x0E,
    Cmp = 0x0F,
    Cmpi = 0x10,
    Lea = 0x11,
    Ld1 = 0x12,
    Ld2 = 0x13,
    Ld4 = 0x14,
    Ld8 = 0x15,
    St1 = 0x16,
    St2 = 0x17,
    St4 = 0x18,
    St8 = 0x19,
    Jmp = 0x1A,
    Je = 0x1B,
    Jne = 0x1C,
    Jlt = 0x1D,
    Jle = 0x1E,
    Jgt = 0x1F,
    Jge = 0x20,
    Jb = 0x21,
    Jbe = 0x22,
    Ja = 0x23,
    Jae = 0x24,
    Jmpr = 0x25,
    Call = 0x26,
    Callr = 0x27,
    Ret = 0x28,
    Push = 0x29,
    Pop = 0x2A,
    Syscall = 0x2B,
    Halt = 0x2C,
    Trap = TRAP_OPCODE,
}

/// One DCVM instruction.
///
/// Relative displacements (`Jmp`, `Jcc`, `Call`, `Lea`) are measured from
/// the address of the **next** instruction, exactly like x86 `rel32`
/// operands. Encoded sizes are given by [`Insn::len`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insn {
    /// Do nothing (1 byte).
    Nop,
    /// `dst = imm` (10 bytes).
    Movi(Reg, u64),
    /// `dst = src` (3 bytes).
    Mov(Reg, Reg),
    /// `dst = dst + src` (3 bytes), wrapping.
    Add(Reg, Reg),
    /// `dst = dst - src` (3 bytes), wrapping.
    Sub(Reg, Reg),
    /// `dst = dst * src` (3 bytes), wrapping.
    Mul(Reg, Reg),
    /// `dst = dst / src` unsigned (3 bytes); division by zero faults.
    Divu(Reg, Reg),
    /// `dst = dst % src` unsigned (3 bytes); division by zero faults.
    Modu(Reg, Reg),
    /// `dst = dst & src` (3 bytes).
    And(Reg, Reg),
    /// `dst = dst | src` (3 bytes).
    Or(Reg, Reg),
    /// `dst = dst ^ src` (3 bytes).
    Xor(Reg, Reg),
    /// `dst = dst << (src & 63)` (3 bytes).
    Shl(Reg, Reg),
    /// `dst = dst >> (src & 63)` logical (3 bytes).
    Shr(Reg, Reg),
    /// `dst = dst + sext(imm)` (6 bytes), wrapping.
    Addi(Reg, i32),
    /// `dst = dst * sext(imm)` (6 bytes), wrapping.
    Muli(Reg, i32),
    /// Compare `a` with `b`, setting flags (3 bytes).
    Cmp(Reg, Reg),
    /// Compare `a` with `sext(imm)`, setting flags (6 bytes).
    Cmpi(Reg, i32),
    /// `dst = address-of-next-instruction + disp` (6 bytes); the ISA's
    /// PC-relative addressing primitive, used for position-independent code.
    Lea(Reg, i32),
    /// `dst = mem[base + disp]`, zero-extended (7 bytes).
    Ld(Width, Reg, Reg, i32),
    /// `mem[base + disp] = src` truncated to the width (7 bytes).
    St(Width, Reg, i32, Reg),
    /// Unconditional relative jump (5 bytes).
    Jmp(i32),
    /// Conditional relative jump (5 bytes).
    Jcc(Cond, i32),
    /// Indirect jump to the address in `target` (2 bytes).
    Jmpr(Reg),
    /// Relative call: push return address, jump (5 bytes).
    Call(i32),
    /// Indirect call to the address in `target` (2 bytes).
    Callr(Reg),
    /// Pop return address and jump to it (1 byte).
    Ret,
    /// Push a register onto the stack (2 bytes).
    Push(Reg),
    /// Pop the stack into a register (2 bytes).
    Pop(Reg),
    /// Enter the kernel; number in `r0`, arguments in `r1..=r5` (1 byte).
    Syscall,
    /// Stop the processor; the kernel kills the process with `SIGILL`-like
    /// semantics (1 byte).
    Halt,
    /// Breakpoint (1 byte, opcode [`TRAP_OPCODE`]). Raises `SIGTRAP`.
    Trap,
}

impl Insn {
    /// The encoded length of this instruction in bytes.
    pub fn len(&self) -> usize {
        match self {
            Insn::Nop | Insn::Ret | Insn::Syscall | Insn::Halt | Insn::Trap => 1,
            Insn::Jmpr(_) | Insn::Callr(_) | Insn::Push(_) | Insn::Pop(_) => 2,
            Insn::Mov(..)
            | Insn::Add(..)
            | Insn::Sub(..)
            | Insn::Mul(..)
            | Insn::Divu(..)
            | Insn::Modu(..)
            | Insn::And(..)
            | Insn::Or(..)
            | Insn::Xor(..)
            | Insn::Shl(..)
            | Insn::Shr(..)
            | Insn::Cmp(..) => 3,
            Insn::Jmp(_) | Insn::Jcc(..) | Insn::Call(_) => 5,
            Insn::Addi(..) | Insn::Muli(..) | Insn::Cmpi(..) | Insn::Lea(..) => 6,
            Insn::Ld(..) | Insn::St(..) => 7,
            Insn::Movi(..) => 10,
        }
    }

    /// Whether `len() == 0`; always `false`, provided for API completeness.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The opcode byte this instruction encodes to.
    pub fn opcode(&self) -> u8 {
        match self {
            Insn::Nop => Opcode::Nop as u8,
            Insn::Movi(..) => Opcode::Movi as u8,
            Insn::Mov(..) => Opcode::Mov as u8,
            Insn::Add(..) => Opcode::Add as u8,
            Insn::Sub(..) => Opcode::Sub as u8,
            Insn::Mul(..) => Opcode::Mul as u8,
            Insn::Divu(..) => Opcode::Divu as u8,
            Insn::Modu(..) => Opcode::Modu as u8,
            Insn::And(..) => Opcode::And as u8,
            Insn::Or(..) => Opcode::Or as u8,
            Insn::Xor(..) => Opcode::Xor as u8,
            Insn::Shl(..) => Opcode::Shl as u8,
            Insn::Shr(..) => Opcode::Shr as u8,
            Insn::Addi(..) => Opcode::Addi as u8,
            Insn::Muli(..) => Opcode::Muli as u8,
            Insn::Cmp(..) => Opcode::Cmp as u8,
            Insn::Cmpi(..) => Opcode::Cmpi as u8,
            Insn::Lea(..) => Opcode::Lea as u8,
            Insn::Ld(w, ..) => match w {
                Width::B1 => Opcode::Ld1 as u8,
                Width::B2 => Opcode::Ld2 as u8,
                Width::B4 => Opcode::Ld4 as u8,
                Width::B8 => Opcode::Ld8 as u8,
            },
            Insn::St(w, ..) => match w {
                Width::B1 => Opcode::St1 as u8,
                Width::B2 => Opcode::St2 as u8,
                Width::B4 => Opcode::St4 as u8,
                Width::B8 => Opcode::St8 as u8,
            },
            Insn::Jmp(_) => Opcode::Jmp as u8,
            Insn::Jcc(cond, _) => {
                Opcode::Je as u8 + Cond::ALL.iter().position(|c| c == cond).unwrap() as u8
            }
            Insn::Jmpr(_) => Opcode::Jmpr as u8,
            Insn::Call(_) => Opcode::Call as u8,
            Insn::Callr(_) => Opcode::Callr as u8,
            Insn::Ret => Opcode::Ret as u8,
            Insn::Push(_) => Opcode::Push as u8,
            Insn::Pop(_) => Opcode::Pop as u8,
            Insn::Syscall => Opcode::Syscall as u8,
            Insn::Halt => Opcode::Halt as u8,
            Insn::Trap => Opcode::Trap as u8,
        }
    }

    /// Whether this instruction ends a basic block: any jump, call, return,
    /// syscall, halt or trap transfers (or may transfer) control.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Insn::Jmp(_)
                | Insn::Jcc(..)
                | Insn::Jmpr(_)
                | Insn::Call(_)
                | Insn::Callr(_)
                | Insn::Ret
                | Insn::Halt
                | Insn::Trap
        )
    }

    /// The relative displacement operand, if this is a PC-relative control
    /// transfer (`Jmp`, `Jcc`, `Call`).
    pub fn rel_target(&self) -> Option<i32> {
        match self {
            Insn::Jmp(disp) | Insn::Jcc(_, disp) | Insn::Call(disp) => Some(*disp),
            _ => None,
        }
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Insn::Nop => write!(f, "nop"),
            Insn::Movi(d, imm) => write!(f, "movi {d}, {imm:#x}"),
            Insn::Mov(d, s) => write!(f, "mov {d}, {s}"),
            Insn::Add(d, s) => write!(f, "add {d}, {s}"),
            Insn::Sub(d, s) => write!(f, "sub {d}, {s}"),
            Insn::Mul(d, s) => write!(f, "mul {d}, {s}"),
            Insn::Divu(d, s) => write!(f, "divu {d}, {s}"),
            Insn::Modu(d, s) => write!(f, "modu {d}, {s}"),
            Insn::And(d, s) => write!(f, "and {d}, {s}"),
            Insn::Or(d, s) => write!(f, "or {d}, {s}"),
            Insn::Xor(d, s) => write!(f, "xor {d}, {s}"),
            Insn::Shl(d, s) => write!(f, "shl {d}, {s}"),
            Insn::Shr(d, s) => write!(f, "shr {d}, {s}"),
            Insn::Addi(d, imm) => write!(f, "addi {d}, {imm}"),
            Insn::Muli(d, imm) => write!(f, "muli {d}, {imm}"),
            Insn::Cmp(a, b) => write!(f, "cmp {a}, {b}"),
            Insn::Cmpi(a, imm) => write!(f, "cmpi {a}, {imm}"),
            Insn::Lea(d, disp) => write!(f, "lea {d}, [pc{disp:+}]"),
            Insn::Ld(w, d, b, disp) => write!(f, "ld{} {d}, [{b}{disp:+}]", w.bytes()),
            Insn::St(w, b, disp, s) => write!(f, "st{} [{b}{disp:+}], {s}", w.bytes()),
            Insn::Jmp(disp) => write!(f, "jmp pc{disp:+}"),
            Insn::Jcc(c, disp) => write!(f, "j{c} pc{disp:+}"),
            Insn::Jmpr(r) => write!(f, "jmpr {r}"),
            Insn::Call(disp) => write!(f, "call pc{disp:+}"),
            Insn::Callr(r) => write!(f, "callr {r}"),
            Insn::Ret => write!(f, "ret"),
            Insn::Push(r) => write!(f, "push {r}"),
            Insn::Pop(r) => write!(f, "pop {r}"),
            Insn::Syscall => write!(f, "syscall"),
            Insn::Halt => write!(f, "halt"),
            Insn::Trap => write!(f, "trap"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trap_opcode_matches_x86_int3() {
        assert_eq!(TRAP_OPCODE, 0xCC);
        assert_eq!(Insn::Trap.opcode(), 0xCC);
        assert_eq!(Insn::Trap.len(), 1);
    }

    #[test]
    fn max_insn_len_bounds_every_encoding() {
        use crate::Reg;
        let longest = [
            Insn::Movi(Reg::R0, u64::MAX),
            Insn::Ld(Width::B8, Reg::R0, Reg::R1, i32::MAX),
            Insn::St(Width::B8, Reg::R0, i32::MAX, Reg::R1),
            Insn::Addi(Reg::R0, i32::MAX),
            Insn::Lea(Reg::R0, i32::MIN),
            Insn::Jmp(i32::MAX),
            Insn::Jcc(Cond::Eq, i32::MIN),
            Insn::Call(i32::MAX),
        ];
        for insn in longest {
            assert!(insn.len() <= MAX_INSN_LEN, "{insn} exceeds MAX_INSN_LEN");
        }
        assert_eq!(Insn::Movi(Reg::R0, 0).len(), MAX_INSN_LEN);
    }

    #[test]
    fn jcc_opcodes_are_contiguous() {
        for (i, cond) in Cond::ALL.iter().enumerate() {
            assert_eq!(Insn::Jcc(*cond, 0).opcode(), Opcode::Je as u8 + i as u8);
        }
    }

    #[test]
    fn terminators_are_exactly_control_transfers() {
        assert!(Insn::Jmp(0).is_terminator());
        assert!(Insn::Ret.is_terminator());
        assert!(Insn::Trap.is_terminator());
        assert!(Insn::Halt.is_terminator());
        assert!(Insn::Callr(Reg::R1).is_terminator());
        assert!(!Insn::Nop.is_terminator());
        assert!(!Insn::Syscall.is_terminator());
        assert!(!Insn::Movi(Reg::R0, 1).is_terminator());
    }

    #[test]
    fn widths_report_bytes() {
        assert_eq!(Width::B1.bytes(), 1);
        assert_eq!(Width::B2.bytes(), 2);
        assert_eq!(Width::B4.bytes(), 4);
        assert_eq!(Width::B8.bytes(), 8);
    }

    #[test]
    fn rel_target_present_only_for_relative_transfers() {
        assert_eq!(Insn::Jmp(4).rel_target(), Some(4));
        assert_eq!(Insn::Jcc(Cond::Ne, -8).rel_target(), Some(-8));
        assert_eq!(Insn::Call(12).rel_target(), Some(12));
        assert_eq!(Insn::Jmpr(Reg::R3).rel_target(), None);
        assert_eq!(Insn::Ret.rel_target(), None);
    }

    #[test]
    fn display_is_nonempty_for_every_variant() {
        let samples = [
            Insn::Nop,
            Insn::Movi(Reg::R1, 42),
            Insn::Ld(Width::B8, Reg::R2, Reg::R3, -16),
            Insn::St(Width::B1, Reg::R4, 8, Reg::R5),
            Insn::Jcc(Cond::A, 100),
            Insn::Trap,
        ];
        for insn in samples {
            assert!(!insn.to_string().is_empty());
        }
    }
}
