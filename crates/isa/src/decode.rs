//! Binary decoding of instructions.

use crate::insn::{Cond, Opcode, Width, TRAP_OPCODE};
use crate::{Insn, IsaError, Reg};

fn reg(bytes: &[u8], at: usize) -> Result<Reg, IsaError> {
    Reg::try_from(bytes[at])
}

fn imm32(bytes: &[u8], at: usize) -> i32 {
    i32::from_le_bytes(bytes[at..at + 4].try_into().expect("bounds checked"))
}

fn imm64(bytes: &[u8], at: usize) -> u64 {
    u64::from_le_bytes(bytes[at..at + 8].try_into().expect("bounds checked"))
}

/// Length in bytes of the instruction starting with `opcode`, if the opcode
/// is valid.
fn length_of(opcode: u8) -> Option<usize> {
    Some(match opcode {
        x if x == Opcode::Nop as u8
            || x == Opcode::Ret as u8
            || x == Opcode::Syscall as u8
            || x == Opcode::Halt as u8
            || x == TRAP_OPCODE =>
        {
            1
        }
        x if x == Opcode::Jmpr as u8
            || x == Opcode::Callr as u8
            || x == Opcode::Push as u8
            || x == Opcode::Pop as u8 =>
        {
            2
        }
        x if (Opcode::Mov as u8..=Opcode::Shr as u8).contains(&x) || x == Opcode::Cmp as u8 => 3,
        x if x == Opcode::Jmp as u8
            || (Opcode::Je as u8..=Opcode::Jae as u8).contains(&x)
            || x == Opcode::Call as u8 =>
        {
            5
        }
        x if x == Opcode::Addi as u8
            || x == Opcode::Muli as u8
            || x == Opcode::Cmpi as u8
            || x == Opcode::Lea as u8 =>
        {
            6
        }
        x if (Opcode::Ld1 as u8..=Opcode::St8 as u8).contains(&x) => 7,
        x if x == Opcode::Movi as u8 => 10,
        _ => return None,
    })
}

/// Decodes the instruction at `offset` inside `bytes`.
///
/// Returns the instruction and its encoded length. Decoding **never reads
/// past the declared instruction length**, so it is safe to point this at
/// arbitrary process memory — exactly what the disassembler, the coverage
/// tracer and the process rewriter do.
///
/// # Errors
///
/// * [`IsaError::BadOpcode`] if the first byte names no instruction,
/// * [`IsaError::TruncatedInsn`] if fewer bytes remain than the instruction
///   needs,
/// * [`IsaError::BadRegister`] if a register operand byte is out of range.
///
/// ```
/// use dynacut_isa::{decode, encode, Insn, Reg};
/// let bytes = encode(&Insn::Pop(Reg::R9));
/// let (insn, len) = decode(&bytes, 0)?;
/// assert_eq!(insn, Insn::Pop(Reg::R9));
/// assert_eq!(len, 2);
/// # Ok::<(), dynacut_isa::IsaError>(())
/// ```
pub fn decode(bytes: &[u8], offset: usize) -> Result<(Insn, usize), IsaError> {
    let avail = bytes.len().saturating_sub(offset);
    if avail == 0 {
        return Err(IsaError::TruncatedInsn {
            offset,
            needed: 1,
            available: 0,
        });
    }
    let opcode = bytes[offset];
    let len = length_of(opcode).ok_or(IsaError::BadOpcode(opcode))?;
    if avail < len {
        return Err(IsaError::TruncatedInsn {
            offset,
            needed: len,
            available: avail,
        });
    }
    let b = &bytes[offset..offset + len];
    let insn = match opcode {
        x if x == Opcode::Nop as u8 => Insn::Nop,
        x if x == Opcode::Movi as u8 => Insn::Movi(reg(b, 1)?, imm64(b, 2)),
        x if x == Opcode::Mov as u8 => Insn::Mov(reg(b, 1)?, reg(b, 2)?),
        x if x == Opcode::Add as u8 => Insn::Add(reg(b, 1)?, reg(b, 2)?),
        x if x == Opcode::Sub as u8 => Insn::Sub(reg(b, 1)?, reg(b, 2)?),
        x if x == Opcode::Mul as u8 => Insn::Mul(reg(b, 1)?, reg(b, 2)?),
        x if x == Opcode::Divu as u8 => Insn::Divu(reg(b, 1)?, reg(b, 2)?),
        x if x == Opcode::Modu as u8 => Insn::Modu(reg(b, 1)?, reg(b, 2)?),
        x if x == Opcode::And as u8 => Insn::And(reg(b, 1)?, reg(b, 2)?),
        x if x == Opcode::Or as u8 => Insn::Or(reg(b, 1)?, reg(b, 2)?),
        x if x == Opcode::Xor as u8 => Insn::Xor(reg(b, 1)?, reg(b, 2)?),
        x if x == Opcode::Shl as u8 => Insn::Shl(reg(b, 1)?, reg(b, 2)?),
        x if x == Opcode::Shr as u8 => Insn::Shr(reg(b, 1)?, reg(b, 2)?),
        x if x == Opcode::Addi as u8 => Insn::Addi(reg(b, 1)?, imm32(b, 2)),
        x if x == Opcode::Muli as u8 => Insn::Muli(reg(b, 1)?, imm32(b, 2)),
        x if x == Opcode::Cmp as u8 => Insn::Cmp(reg(b, 1)?, reg(b, 2)?),
        x if x == Opcode::Cmpi as u8 => Insn::Cmpi(reg(b, 1)?, imm32(b, 2)),
        x if x == Opcode::Lea as u8 => Insn::Lea(reg(b, 1)?, imm32(b, 2)),
        x if (Opcode::Ld1 as u8..=Opcode::Ld8 as u8).contains(&x) => {
            let width = match x - Opcode::Ld1 as u8 {
                0 => Width::B1,
                1 => Width::B2,
                2 => Width::B4,
                _ => Width::B8,
            };
            Insn::Ld(width, reg(b, 1)?, reg(b, 2)?, imm32(b, 3))
        }
        x if (Opcode::St1 as u8..=Opcode::St8 as u8).contains(&x) => {
            let width = match x - Opcode::St1 as u8 {
                0 => Width::B1,
                1 => Width::B2,
                2 => Width::B4,
                _ => Width::B8,
            };
            Insn::St(width, reg(b, 1)?, imm32(b, 3), reg(b, 2)?)
        }
        x if x == Opcode::Jmp as u8 => Insn::Jmp(imm32(b, 1)),
        x if (Opcode::Je as u8..=Opcode::Jae as u8).contains(&x) => {
            let cond = Cond::ALL[(x - Opcode::Je as u8) as usize];
            Insn::Jcc(cond, imm32(b, 1))
        }
        x if x == Opcode::Jmpr as u8 => Insn::Jmpr(reg(b, 1)?),
        x if x == Opcode::Call as u8 => Insn::Call(imm32(b, 1)),
        x if x == Opcode::Callr as u8 => Insn::Callr(reg(b, 1)?),
        x if x == Opcode::Ret as u8 => Insn::Ret,
        x if x == Opcode::Push as u8 => Insn::Push(reg(b, 1)?),
        x if x == Opcode::Pop as u8 => Insn::Pop(reg(b, 1)?),
        x if x == Opcode::Syscall as u8 => Insn::Syscall,
        x if x == Opcode::Halt as u8 => Insn::Halt,
        x if x == TRAP_OPCODE => Insn::Trap,
        other => return Err(IsaError::BadOpcode(other)),
    };
    Ok((insn, len))
}

/// Decodes an entire byte slice as a contiguous instruction stream.
///
/// # Errors
///
/// Fails with the same errors as [`decode`] at the first undecodable
/// position.
pub fn decode_all(bytes: &[u8]) -> Result<Vec<(usize, Insn)>, IsaError> {
    let mut out = Vec::new();
    let mut offset = 0;
    while offset < bytes.len() {
        let (insn, len) = decode(bytes, offset)?;
        out.push((offset, insn));
        offset += len;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode;

    fn sample_insns() -> Vec<Insn> {
        let mut v = vec![
            Insn::Nop,
            Insn::Movi(Reg::R7, u64::MAX),
            Insn::Mov(Reg::R1, Reg::R2),
            Insn::Add(Reg::R1, Reg::R2),
            Insn::Sub(Reg::R1, Reg::R2),
            Insn::Mul(Reg::R1, Reg::R2),
            Insn::Divu(Reg::R1, Reg::R2),
            Insn::Modu(Reg::R1, Reg::R2),
            Insn::And(Reg::R1, Reg::R2),
            Insn::Or(Reg::R1, Reg::R2),
            Insn::Xor(Reg::R1, Reg::R2),
            Insn::Shl(Reg::R1, Reg::R2),
            Insn::Shr(Reg::R1, Reg::R2),
            Insn::Addi(Reg::R3, -123),
            Insn::Muli(Reg::R3, 55),
            Insn::Cmp(Reg::R4, Reg::R5),
            Insn::Cmpi(Reg::R4, i32::MIN),
            Insn::Lea(Reg::R6, 4096),
            Insn::Jmp(-5),
            Insn::Jmpr(Reg::R9),
            Insn::Call(1_000_000),
            Insn::Callr(Reg::R8),
            Insn::Ret,
            Insn::Push(Reg::R0),
            Insn::Pop(Reg::R15),
            Insn::Syscall,
            Insn::Halt,
            Insn::Trap,
        ];
        for width in [Width::B1, Width::B2, Width::B4, Width::B8] {
            v.push(Insn::Ld(width, Reg::R1, Reg::R15, -32));
            v.push(Insn::St(width, Reg::R15, 16, Reg::R2));
        }
        for cond in Cond::ALL {
            v.push(Insn::Jcc(cond, 42));
        }
        v
    }

    #[test]
    fn round_trip_every_instruction() {
        for insn in sample_insns() {
            let bytes = encode(&insn);
            let (decoded, len) = decode(&bytes, 0).unwrap();
            assert_eq!(decoded, insn);
            assert_eq!(len, insn.len());
        }
    }

    #[test]
    fn round_trip_contiguous_stream() {
        let insns = sample_insns();
        let mut bytes = Vec::new();
        for insn in &insns {
            crate::encode_into(insn, &mut bytes);
        }
        let decoded = decode_all(&bytes).unwrap();
        assert_eq!(decoded.len(), insns.len());
        for ((_, got), want) in decoded.iter().zip(&insns) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn unknown_opcode_is_rejected() {
        assert!(matches!(decode(&[0xEE], 0), Err(IsaError::BadOpcode(0xEE))));
    }

    #[test]
    fn truncated_instruction_is_rejected() {
        let bytes = encode(&Insn::Movi(Reg::R0, 7));
        let err = decode(&bytes[..4], 0).unwrap_err();
        assert!(matches!(
            err,
            IsaError::TruncatedInsn {
                needed: 10,
                available: 4,
                ..
            }
        ));
    }

    #[test]
    fn empty_input_is_truncated() {
        assert!(matches!(
            decode(&[], 0),
            Err(IsaError::TruncatedInsn { available: 0, .. })
        ));
    }

    #[test]
    fn trap_byte_decodes_anywhere() {
        // DynaCut overwrites the first byte of a block with 0xCC; the
        // decoder must recognise it regardless of surrounding garbage.
        let bytes = [0x00, TRAP_OPCODE, 0x00];
        let (insn, len) = decode(&bytes, 1).unwrap();
        assert_eq!(insn, Insn::Trap);
        assert_eq!(len, 1);
    }

    #[test]
    fn bad_register_operand_is_rejected() {
        // MOV with register byte 0x20.
        let bytes = [Opcode::Mov as u8, 0x20, 0x00];
        assert!(matches!(
            decode(&bytes, 0),
            Err(IsaError::BadRegister(0x20))
        ));
    }
}
