//! Error type for encoding, decoding and assembly.

use std::error::Error;
use std::fmt;

/// Errors raised while encoding, decoding or assembling DCVM code.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum IsaError {
    /// A register operand byte was outside `0..=15`.
    BadRegister(u8),
    /// An opcode byte does not name any DCVM instruction.
    BadOpcode(u8),
    /// The byte stream ended in the middle of an instruction.
    TruncatedInsn {
        /// Offset of the instruction's opcode byte.
        offset: usize,
        /// Bytes the instruction needs.
        needed: usize,
        /// Bytes that were available.
        available: usize,
    },
    /// A label was referenced but never defined.
    UndefinedLabel(String),
    /// A label was defined twice.
    DuplicateLabel(String),
    /// A branch target is too far away to encode in a 32-bit displacement.
    DisplacementOverflow {
        /// The label whose displacement overflowed.
        label: String,
        /// The displacement that did not fit.
        displacement: i64,
    },
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::BadRegister(value) => {
                write!(f, "register operand {value} is outside 0..=15")
            }
            IsaError::BadOpcode(value) => write!(f, "unknown opcode byte {value:#04x}"),
            IsaError::TruncatedInsn {
                offset,
                needed,
                available,
            } => write!(
                f,
                "instruction at offset {offset:#x} needs {needed} bytes but only {available} remain"
            ),
            IsaError::UndefinedLabel(name) => write!(f, "undefined label `{name}`"),
            IsaError::DuplicateLabel(name) => write!(f, "duplicate label `{name}`"),
            IsaError::DisplacementOverflow {
                label,
                displacement,
            } => write!(
                f,
                "displacement {displacement} to label `{label}` does not fit in 32 bits"
            ),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_nonempty_messages() {
        let samples = [
            IsaError::BadRegister(99),
            IsaError::BadOpcode(0xEE),
            IsaError::TruncatedInsn {
                offset: 4,
                needed: 10,
                available: 2,
            },
            IsaError::UndefinedLabel("loop".into()),
            IsaError::DuplicateLabel("loop".into()),
            IsaError::DisplacementOverflow {
                label: "far".into(),
                displacement: i64::MAX,
            },
        ];
        for err in samples {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn error_is_std_error() {
        fn takes_error<E: Error + Send + Sync + 'static>(_: E) {}
        takes_error(IsaError::BadOpcode(0));
    }
}
