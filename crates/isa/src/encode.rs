//! Binary encoding of instructions.

use crate::Insn;

/// Encodes one instruction, appending its bytes to `out`.
///
/// The number of bytes appended always equals [`Insn::len`].
pub fn encode_into(insn: &Insn, out: &mut Vec<u8>) {
    let start = out.len();
    out.push(insn.opcode());
    match insn {
        Insn::Nop | Insn::Ret | Insn::Syscall | Insn::Halt | Insn::Trap => {}
        Insn::Movi(d, imm) => {
            out.push((*d).into());
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Insn::Mov(d, s)
        | Insn::Add(d, s)
        | Insn::Sub(d, s)
        | Insn::Mul(d, s)
        | Insn::Divu(d, s)
        | Insn::Modu(d, s)
        | Insn::And(d, s)
        | Insn::Or(d, s)
        | Insn::Xor(d, s)
        | Insn::Shl(d, s)
        | Insn::Shr(d, s)
        | Insn::Cmp(d, s) => {
            out.push((*d).into());
            out.push((*s).into());
        }
        Insn::Addi(d, imm) | Insn::Muli(d, imm) | Insn::Cmpi(d, imm) | Insn::Lea(d, imm) => {
            out.push((*d).into());
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Insn::Ld(_, d, b, disp) => {
            out.push((*d).into());
            out.push((*b).into());
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Insn::St(_, b, disp, s) => {
            out.push((*b).into());
            out.push((*s).into());
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Insn::Jmp(disp) | Insn::Jcc(_, disp) | Insn::Call(disp) => {
            out.extend_from_slice(&disp.to_le_bytes());
        }
        Insn::Jmpr(r) | Insn::Callr(r) | Insn::Push(r) | Insn::Pop(r) => {
            out.push((*r).into());
        }
    }
    debug_assert_eq!(out.len() - start, insn.len(), "encoding of {insn}");
    // The width is recoverable from the opcode alone; assert the variants
    // stayed in sync with the opcode table.
    if let Insn::Ld(w, ..) | Insn::St(w, ..) = insn {
        debug_assert!(w.bytes() <= 8);
    }
}

/// Encodes one instruction into a fresh byte vector.
///
/// ```
/// use dynacut_isa::{encode, Insn, Reg};
/// let bytes = encode(&Insn::Push(Reg::R3));
/// assert_eq!(bytes.len(), Insn::Push(Reg::R3).len());
/// ```
pub fn encode(insn: &Insn) -> Vec<u8> {
    let mut out = Vec::with_capacity(insn.len());
    encode_into(insn, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{Cond, Width};
    use crate::Reg;

    #[test]
    fn encoded_length_matches_declared_length() {
        let samples = [
            Insn::Nop,
            Insn::Movi(Reg::R7, u64::MAX),
            Insn::Mov(Reg::R1, Reg::R2),
            Insn::Addi(Reg::R3, -1),
            Insn::Cmp(Reg::R4, Reg::R5),
            Insn::Lea(Reg::R6, 1024),
            Insn::Ld(Width::B4, Reg::R1, Reg::R15, -32),
            Insn::St(Width::B8, Reg::R15, 16, Reg::R2),
            Insn::Jmp(-5),
            Insn::Jcc(Cond::Be, 77),
            Insn::Call(0),
            Insn::Jmpr(Reg::R9),
            Insn::Ret,
            Insn::Push(Reg::R0),
            Insn::Syscall,
            Insn::Halt,
            Insn::Trap,
        ];
        for insn in samples {
            assert_eq!(encode(&insn).len(), insn.len(), "{insn}");
        }
    }

    #[test]
    fn first_byte_is_the_opcode() {
        let insn = Insn::Movi(Reg::R0, 0xDEADBEEF);
        assert_eq!(encode(&insn)[0], insn.opcode());
    }

    #[test]
    fn immediates_are_little_endian() {
        let bytes = encode(&Insn::Movi(Reg::R0, 0x0102030405060708));
        assert_eq!(&bytes[2..], &[8, 7, 6, 5, 4, 3, 2, 1]);
    }
}
