//! A two-pass, label-based assembler that records basic-block layout.
//!
//! Guest applications (the Nginx/Lighttpd/Redis analogues) are written
//! against this API. Besides emitting bytes, the assembler computes the
//! very metadata DynaCut's pipeline consumes: the [`BasicBlock`] partition
//! of the text, per-function spans, and relocation records for symbols that
//! live in other modules (resolved later by the `dynacut-obj` linker).

use crate::block::BasicBlock;
use crate::insn::Cond;
use crate::{encode_into, Insn, IsaError, Reg};
use std::collections::BTreeMap;

/// How a relocation site must be patched by the linker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RelocKind {
    /// A 32-bit displacement relative to the end of the containing
    /// instruction (`call`/`jmp`/`lea` operands): `disp = S + A - next`.
    Rel32,
    /// A 64-bit absolute address (`movi` immediate): `value = S + A`.
    Abs64,
}

/// A symbol reference left unresolved by the assembler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmReloc {
    /// Byte offset of the patch field inside the emitted text.
    pub site: u64,
    /// Address of the instruction end (used for [`RelocKind::Rel32`]).
    pub next: u64,
    /// The symbol whose address resolves this site.
    pub symbol: String,
    /// Constant added to the symbol address.
    pub addend: i64,
    /// Patch semantics.
    pub kind: RelocKind,
}

/// A named function's byte span inside the text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncSpan {
    /// Function name (also defined as a label).
    pub name: String,
    /// Byte offset of the function entry.
    pub offset: u64,
    /// Size in bytes (to the start of the next function or end of text).
    pub size: u64,
}

/// The output of [`Assembler::finish`]: encoded text plus all metadata.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TextImage {
    /// The encoded instruction stream.
    pub bytes: Vec<u8>,
    /// Basic blocks partitioning `bytes` (sorted, disjoint, exhaustive).
    pub blocks: Vec<BasicBlock>,
    /// Label name → byte offset.
    pub labels: BTreeMap<String, u64>,
    /// Function spans in layout order.
    pub functions: Vec<FuncSpan>,
    /// Unresolved external references for the linker.
    pub relocs: Vec<AsmReloc>,
}

impl TextImage {
    /// Byte offset of a label.
    ///
    /// # Errors
    ///
    /// Returns [`IsaError::UndefinedLabel`] if the label does not exist.
    pub fn label_offset(&self, name: &str) -> Result<u64, IsaError> {
        self.labels
            .get(name)
            .copied()
            .ok_or_else(|| IsaError::UndefinedLabel(name.to_owned()))
    }

    /// The basic block whose entry is exactly `offset`, if any.
    pub fn block_at(&self, offset: u64) -> Option<BasicBlock> {
        self.blocks
            .binary_search_by_key(&offset, |b| b.addr)
            .ok()
            .map(|i| self.blocks[i])
    }

    /// The function span containing `offset`, if any.
    pub fn function_containing(&self, offset: u64) -> Option<&FuncSpan> {
        self.functions
            .iter()
            .find(|f| offset >= f.offset && offset < f.offset + f.size)
    }
}

#[derive(Debug, Clone)]
enum Item {
    Insn(Insn),
    /// Local-label-resolved variants; patched in the second pass.
    Jmp(String),
    Jcc(Cond, String),
    Call(String),
    Lea(Reg, String),
    /// External references; become [`AsmReloc`]s.
    CallExt(String),
    LeaExt(Reg, String, i64),
    MoviExt(Reg, String, i64),
    /// Pad with `nop`s until the offset is a multiple of the alignment.
    Align(u64),
}

impl Item {
    /// Encoded size of the item when it starts at offset `pos`.
    fn size_at(&self, pos: u64) -> u64 {
        match self {
            Item::Align(align) => (align - pos % align) % align,
            other => other.insn_template().len() as u64,
        }
    }

    fn insn_template(&self) -> Insn {
        match self {
            Item::Insn(insn) => *insn,
            Item::Jmp(_) => Insn::Jmp(0),
            Item::Jcc(cond, _) => Insn::Jcc(*cond, 0),
            Item::Call(_) | Item::CallExt(_) => Insn::Call(0),
            Item::Lea(reg, _) => Insn::Lea(*reg, 0),
            Item::LeaExt(reg, _, _) => Insn::Lea(*reg, 0),
            Item::MoviExt(reg, _, _) => Insn::Movi(*reg, 0),
            Item::Align(_) => Insn::Nop,
        }
    }
}

/// A two-pass assembler.
///
/// ```
/// use dynacut_isa::{Assembler, Cond, Insn, Reg};
///
/// # fn main() -> Result<(), dynacut_isa::IsaError> {
/// let mut asm = Assembler::new();
/// asm.func("count_down");
/// asm.push(Insn::Movi(Reg::R1, 3));
/// asm.label("loop");
/// asm.push(Insn::Addi(Reg::R1, -1));
/// asm.push(Insn::Cmpi(Reg::R1, 0));
/// asm.jcc(Cond::Ne, "loop");
/// asm.push(Insn::Ret);
/// let text = asm.finish()?;
/// assert_eq!(text.functions[0].name, "count_down");
/// // `loop` starts a new basic block.
/// assert!(text.block_at(text.label_offset("loop")?).is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct Assembler {
    items: Vec<Item>,
    /// label → index of the item it precedes.
    labels: BTreeMap<String, usize>,
    funcs: Vec<(String, usize)>,
    errors: Vec<IsaError>,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a raw instruction.
    pub fn push(&mut self, insn: Insn) -> &mut Self {
        self.items.push(Item::Insn(insn));
        self
    }

    /// Appends several raw instructions.
    pub fn extend<I: IntoIterator<Item = Insn>>(&mut self, insns: I) -> &mut Self {
        for insn in insns {
            self.push(insn);
        }
        self
    }

    /// Defines `name` at the current position.
    ///
    /// Duplicate definitions are reported by [`Assembler::finish`].
    pub fn label(&mut self, name: &str) -> &mut Self {
        if self
            .labels
            .insert(name.to_owned(), self.items.len())
            .is_some()
        {
            self.errors.push(IsaError::DuplicateLabel(name.to_owned()));
        }
        self
    }

    /// Starts a function: defines a label and records a function span.
    pub fn func(&mut self, name: &str) -> &mut Self {
        self.label(name);
        self.funcs.push((name.to_owned(), self.items.len()));
        self
    }

    /// Unconditional jump to a local label.
    pub fn jmp(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::Jmp(label.to_owned()));
        self
    }

    /// Conditional jump to a local label.
    pub fn jcc(&mut self, cond: Cond, label: &str) -> &mut Self {
        self.items.push(Item::Jcc(cond, label.to_owned()));
        self
    }

    /// Call a local label.
    pub fn call(&mut self, label: &str) -> &mut Self {
        self.items.push(Item::Call(label.to_owned()));
        self
    }

    /// Load the address of a local label (PC-relative).
    pub fn lea(&mut self, reg: Reg, label: &str) -> &mut Self {
        self.items.push(Item::Lea(reg, label.to_owned()));
        self
    }

    /// Call an **external** symbol; emits a [`RelocKind::Rel32`] relocation
    /// for the linker.
    pub fn call_ext(&mut self, symbol: &str) -> &mut Self {
        self.items.push(Item::CallExt(symbol.to_owned()));
        self
    }

    /// PC-relative address of an **external** symbol plus `addend`.
    pub fn lea_ext(&mut self, reg: Reg, symbol: &str, addend: i64) -> &mut Self {
        self.items
            .push(Item::LeaExt(reg, symbol.to_owned(), addend));
        self
    }

    /// Absolute address of an **external** symbol plus `addend`; emits a
    /// [`RelocKind::Abs64`] relocation.
    pub fn movi_ext(&mut self, reg: Reg, symbol: &str, addend: i64) -> &mut Self {
        self.items
            .push(Item::MoviExt(reg, symbol.to_owned(), addend));
        self
    }

    /// Pads the current position to a multiple of `align` bytes with `nop`s.
    ///
    /// The linker's page-per-feature layout uses this to give selected
    /// handlers their own pages so they can be unmapped wholesale.
    ///
    /// # Panics
    ///
    /// Panics if `align` is zero.
    pub fn align(&mut self, align: u64) -> &mut Self {
        assert!(align > 0, "alignment must be non-zero");
        self.items.push(Item::Align(align));
        self
    }

    /// Number of instructions pushed so far.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no instructions have been pushed.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Assembles everything pushed so far.
    ///
    /// # Errors
    ///
    /// Reports duplicate labels, undefined local labels, and branch
    /// displacements that do not fit in 32 bits.
    pub fn finish(&mut self) -> Result<TextImage, IsaError> {
        if let Some(err) = self.errors.first() {
            return Err(err.clone());
        }

        // Pass 1: lay out offsets (every item has a fixed-size template).
        let mut offsets = Vec::with_capacity(self.items.len() + 1);
        let mut pos = 0u64;
        for item in &self.items {
            offsets.push(pos);
            pos += item.size_at(pos);
        }
        offsets.push(pos);
        let total = pos;

        let label_offset = |labels: &BTreeMap<String, usize>, name: &str| -> Option<u64> {
            labels.get(name).map(|&idx| offsets[idx])
        };

        // Pass 2: encode with displacements resolved.
        let mut bytes = Vec::with_capacity(total as usize);
        let mut relocs = Vec::new();
        for (idx, item) in self.items.iter().enumerate() {
            let next = offsets[idx + 1];
            let resolve = |name: &str| -> Result<i32, IsaError> {
                let target = label_offset(&self.labels, name)
                    .ok_or_else(|| IsaError::UndefinedLabel(name.to_owned()))?;
                let disp = target as i64 - next as i64;
                i32::try_from(disp).map_err(|_| IsaError::DisplacementOverflow {
                    label: name.to_owned(),
                    displacement: disp,
                })
            };
            if let Item::Align(_) = item {
                let pad = (offsets[idx + 1] - offsets[idx]) as usize;
                bytes.extend(std::iter::repeat_n(Insn::Nop.opcode(), pad));
                continue;
            }
            let insn = match item {
                Item::Insn(insn) => *insn,
                Item::Jmp(name) => Insn::Jmp(resolve(name)?),
                Item::Jcc(cond, name) => Insn::Jcc(*cond, resolve(name)?),
                Item::Call(name) => Insn::Call(resolve(name)?),
                Item::Lea(reg, name) => Insn::Lea(*reg, resolve(name)?),
                Item::CallExt(symbol) => {
                    relocs.push(AsmReloc {
                        site: offsets[idx] + 1,
                        next,
                        symbol: symbol.clone(),
                        addend: 0,
                        kind: RelocKind::Rel32,
                    });
                    Insn::Call(0)
                }
                Item::LeaExt(reg, symbol, addend) => {
                    relocs.push(AsmReloc {
                        site: offsets[idx] + 2,
                        next,
                        symbol: symbol.clone(),
                        addend: *addend,
                        kind: RelocKind::Rel32,
                    });
                    Insn::Lea(*reg, 0)
                }
                Item::MoviExt(reg, symbol, addend) => {
                    relocs.push(AsmReloc {
                        site: offsets[idx] + 2,
                        next,
                        symbol: symbol.clone(),
                        addend: *addend,
                        kind: RelocKind::Abs64,
                    });
                    Insn::Movi(*reg, 0)
                }
                Item::Align(_) => unreachable!("handled above"),
            };
            encode_into(&insn, &mut bytes);
        }

        // Basic blocks: leaders are item 0, every label target, and every
        // item following a terminator.
        let mut leader = vec![false; self.items.len()];
        if !self.items.is_empty() {
            leader[0] = true;
        }
        for &idx in self.labels.values() {
            if idx < leader.len() {
                leader[idx] = true;
            }
        }
        for (idx, item) in self.items.iter().enumerate() {
            if item.insn_template().is_terminator() && idx + 1 < leader.len() {
                leader[idx + 1] = true;
            }
        }
        let mut blocks = Vec::new();
        let mut start: Option<usize> = None;
        for idx in 0..self.items.len() {
            if leader[idx] {
                if let Some(s) = start {
                    if offsets[idx] > offsets[s] {
                        blocks.push(BasicBlock::new(
                            offsets[s],
                            (offsets[idx] - offsets[s]) as u32,
                        ));
                        start = Some(idx);
                    }
                    // Zero-size span (e.g. a label on a 0-byte align):
                    // keep the earlier leader.
                } else {
                    start = Some(idx);
                }
            }
        }
        if let Some(s) = start {
            if total > offsets[s] {
                blocks.push(BasicBlock::new(offsets[s], (total - offsets[s]) as u32));
            }
        }

        // Function spans, in layout order.
        let mut funcs: Vec<(String, u64)> = self
            .funcs
            .iter()
            .map(|(name, idx)| (name.clone(), offsets[*idx]))
            .collect();
        funcs.sort_by_key(|(_, offset)| *offset);
        let functions = funcs
            .iter()
            .enumerate()
            .map(|(i, (name, offset))| {
                let end = funcs.get(i + 1).map(|(_, o)| *o).unwrap_or(total);
                FuncSpan {
                    name: name.clone(),
                    offset: *offset,
                    size: end - offset,
                }
            })
            .collect();

        let labels = self
            .labels
            .iter()
            .map(|(name, &idx)| (name.clone(), offsets[idx]))
            .collect();

        Ok(TextImage {
            bytes,
            blocks,
            labels,
            functions,
            relocs,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_and_backward_branches_resolve() {
        let mut asm = Assembler::new();
        asm.label("top");
        asm.push(Insn::Addi(Reg::R0, 1));
        asm.jcc(Cond::Ne, "done"); // forward
        asm.jmp("top"); // backward
        asm.label("done");
        asm.push(Insn::Ret);
        let text = asm.finish().unwrap();

        let decoded = crate::decode_all(&text.bytes).unwrap();
        // jcc at offset 6, next = 11, done = 16 => disp 5
        assert_eq!(decoded[1].1, Insn::Jcc(Cond::Ne, 5));
        // jmp at 11, next = 16, top = 0 => disp -16
        assert_eq!(decoded[2].1, Insn::Jmp(-16));
    }

    #[test]
    fn blocks_partition_the_text() {
        let mut asm = Assembler::new();
        asm.func("f");
        asm.push(Insn::Movi(Reg::R0, 1));
        asm.jmp("exit");
        asm.label("mid");
        asm.push(Insn::Nop);
        asm.label("exit");
        asm.push(Insn::Ret);
        let text = asm.finish().unwrap();

        let mut covered = 0u64;
        let mut prev_end = 0u64;
        for block in &text.blocks {
            assert_eq!(block.addr, prev_end, "blocks are contiguous");
            prev_end = block.range().end;
            covered += u64::from(block.size);
        }
        assert_eq!(covered, text.bytes.len() as u64);
        // `mid` and `exit` are both leaders.
        assert!(text
            .block_at(text.label_offset("mid").unwrap())
            .is_some());
        assert!(text
            .block_at(text.label_offset("exit").unwrap())
            .is_some());
    }

    #[test]
    fn undefined_label_is_reported() {
        let mut asm = Assembler::new();
        asm.jmp("nowhere");
        assert!(matches!(
            asm.finish(),
            Err(IsaError::UndefinedLabel(name)) if name == "nowhere"
        ));
    }

    #[test]
    fn duplicate_label_is_reported() {
        let mut asm = Assembler::new();
        asm.label("twice");
        asm.push(Insn::Nop);
        asm.label("twice");
        assert!(matches!(
            asm.finish(),
            Err(IsaError::DuplicateLabel(name)) if name == "twice"
        ));
    }

    #[test]
    fn external_call_emits_rel32_reloc() {
        let mut asm = Assembler::new();
        asm.push(Insn::Nop);
        asm.call_ext("libc_write");
        let text = asm.finish().unwrap();
        assert_eq!(text.relocs.len(), 1);
        let reloc = &text.relocs[0];
        assert_eq!(reloc.kind, RelocKind::Rel32);
        assert_eq!(reloc.site, 2); // nop(1) + call opcode(1)
        assert_eq!(reloc.next, 6); // nop(1) + call(5)
        assert_eq!(reloc.symbol, "libc_write");
    }

    #[test]
    fn movi_ext_emits_abs64_reloc() {
        let mut asm = Assembler::new();
        asm.movi_ext(Reg::R2, "config_table", 16);
        let text = asm.finish().unwrap();
        let reloc = &text.relocs[0];
        assert_eq!(reloc.kind, RelocKind::Abs64);
        assert_eq!(reloc.site, 2);
        assert_eq!(reloc.addend, 16);
    }

    #[test]
    fn function_spans_cover_layout_order() {
        let mut asm = Assembler::new();
        asm.func("a");
        asm.push(Insn::Nop);
        asm.push(Insn::Ret);
        asm.func("b");
        asm.push(Insn::Ret);
        let text = asm.finish().unwrap();
        assert_eq!(text.functions.len(), 2);
        assert_eq!(text.functions[0].name, "a");
        assert_eq!(text.functions[0].size, 2);
        assert_eq!(text.functions[1].offset, 2);
        assert_eq!(text.functions[1].size, 1);
        assert_eq!(text.function_containing(1).unwrap().name, "a");
        assert_eq!(text.function_containing(2).unwrap().name, "b");
    }

    #[test]
    fn call_does_not_split_callee_block_but_is_terminator() {
        let mut asm = Assembler::new();
        asm.push(Insn::Nop);
        asm.push(Insn::Callr(Reg::R1));
        asm.push(Insn::Nop);
        let text = asm.finish().unwrap();
        // Two blocks: [nop, callr] and [nop].
        assert_eq!(text.blocks.len(), 2);
        assert_eq!(text.blocks[0].size, 3);
        assert_eq!(text.blocks[1].addr, 3);
    }

    #[test]
    fn empty_assembler_yields_empty_image() {
        let text = Assembler::new().finish().unwrap();
        assert!(text.bytes.is_empty());
        assert!(text.blocks.is_empty());
    }
}
