//! Error type for linking, encoding and loading DCO images.

use std::error::Error;
use std::fmt;

/// Errors raised by the DCO linker, codec and loader.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ObjError {
    /// A referenced symbol is defined neither locally nor by any library
    /// given to the linker.
    UnresolvedSymbol(String),
    /// The same symbol is defined more than once in a module.
    DuplicateSymbol(String),
    /// A PC-relative data reference crosses a module boundary; only
    /// function imports (via the PLT) are supported across modules.
    CrossModuleData(String),
    /// An executable was linked without an entry symbol.
    MissingEntry,
    /// The named entry symbol does not exist in the module.
    BadEntry(String),
    /// A relocation displacement does not fit in its field.
    RelocOverflow {
        /// The symbol whose displacement overflowed.
        symbol: String,
        /// The displacement value.
        displacement: i64,
    },
    /// The byte stream is not a valid DCO image.
    BadImage(String),
    /// A load-time import could not be resolved.
    MissingImport {
        /// Module doing the importing.
        module: String,
        /// Symbol that could not be resolved.
        symbol: String,
    },
    /// An assembler error surfaced during linking.
    Isa(dynacut_isa::IsaError),
}

impl fmt::Display for ObjError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjError::UnresolvedSymbol(name) => write!(f, "unresolved symbol `{name}`"),
            ObjError::DuplicateSymbol(name) => write!(f, "duplicate symbol `{name}`"),
            ObjError::CrossModuleData(name) => write!(
                f,
                "pc-relative reference to `{name}` crosses a module boundary"
            ),
            ObjError::MissingEntry => write!(f, "executable has no entry symbol"),
            ObjError::BadEntry(name) => write!(f, "entry symbol `{name}` is not defined"),
            ObjError::RelocOverflow {
                symbol,
                displacement,
            } => write!(
                f,
                "relocation to `{symbol}` overflows: displacement {displacement}"
            ),
            ObjError::BadImage(reason) => write!(f, "malformed DCO image: {reason}"),
            ObjError::MissingImport { module, symbol } => {
                write!(f, "module `{module}` imports unresolvable `{symbol}`")
            }
            ObjError::Isa(err) => write!(f, "assembly error: {err}"),
        }
    }
}

impl Error for ObjError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ObjError::Isa(err) => Some(err),
            _ => None,
        }
    }
}

impl From<dynacut_isa::IsaError> for ObjError {
    fn from(err: dynacut_isa::IsaError) -> Self {
        ObjError::Isa(err)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_nonempty() {
        let samples = [
            ObjError::UnresolvedSymbol("f".into()),
            ObjError::DuplicateSymbol("g".into()),
            ObjError::CrossModuleData("tbl".into()),
            ObjError::MissingEntry,
            ObjError::BadEntry("main".into()),
            ObjError::RelocOverflow {
                symbol: "x".into(),
                displacement: 1 << 40,
            },
            ObjError::BadImage("truncated".into()),
            ObjError::MissingImport {
                module: "app".into(),
                symbol: "libc_write".into(),
            },
        ];
        for err in samples {
            assert!(!err.to_string().is_empty());
        }
    }

    #[test]
    fn isa_error_is_wrapped_with_source() {
        let err = ObjError::from(dynacut_isa::IsaError::BadOpcode(0xEE));
        assert!(err.source().is_some());
    }
}
