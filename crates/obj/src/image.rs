//! The linked, loadable module image.

use dynacut_isa::{BasicBlock, FuncSpan};
use std::collections::BTreeMap;
use std::fmt;

/// Whether a module is a standalone program or a position-independent
/// shared library.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObjectKind {
    /// A program with an entry point.
    Executable,
    /// A position-independent shared library (e.g. the guest libc, or the
    /// signal-handler library DynaCut injects).
    SharedLib,
}

/// What kind of thing a symbol names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SymbolKind {
    /// Code (a function entry in `.text`).
    Func,
    /// Data (an object in `.rodata`, `.data` or `.bss`).
    Object,
}

/// A defined symbol: a module-relative offset plus its kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SymbolDef {
    /// Offset from the module base address.
    pub offset: u64,
    /// Function or data object.
    pub kind: SymbolKind,
    /// Size in bytes (0 if unknown).
    pub size: u64,
}

/// One procedure-linkage-table entry synthesised by the linker for an
/// imported function.
///
/// The stub at `stub_offset` loads the code address from the GOT slot at
/// `got_offset` and jumps to it — the structure the paper's ret2plt/BROP
/// analysis (§4.2) inspects and that DynaCut disables post-initialization.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PltEntry {
    /// Name of the imported function.
    pub name: String,
    /// Module-relative offset of the 15-byte stub in the text segment.
    pub stub_offset: u64,
    /// Module-relative offset of the 8-byte GOT slot in the data segment.
    pub got_offset: u64,
}

/// Size in bytes of one PLT stub (`lea r14, got` + `ld8 r14,[r14]` +
/// `jmpr r14`).
pub const PLT_STUB_SIZE: u64 = 6 + 7 + 2;

/// What a load-time relocation site receives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelocValue {
    /// Absolute address of a locally defined symbol: `base + offset + addend`.
    Local {
        /// Module-relative target offset.
        offset: u64,
        /// Constant addend.
        addend: i64,
    },
    /// Absolute address of a symbol exported by another module, resolved by
    /// the loader (GOT-slot fills and `movi_ext` immediates).
    Import {
        /// Imported symbol name.
        symbol: String,
        /// Constant addend.
        addend: i64,
    },
}

/// A load-time relocation: write an 8-byte little-endian absolute address
/// at module-relative offset `site`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DynReloc {
    /// Module-relative offset of the 8-byte patch field.
    pub site: u64,
    /// The value to write.
    pub value: RelocValue,
}

/// A linked module, ready to be placed at a base address.
///
/// Layout (module-relative):
///
/// ```text
/// 0x0        .text  (application code, then PLT stubs)   r-x
/// rodata_off .rodata                                     r--
/// data_off   .data, then .got                            rw-
/// bss_off    .bss   (zero-filled)                        rw-
/// ```
///
/// Every boundary is page-aligned so segments can carry distinct
/// permissions.
#[derive(Debug, Clone, PartialEq)]
pub struct Image {
    /// Module name (e.g. `"nginx"`, `"libc"`).
    pub name: String,
    /// Executable or shared library.
    pub kind: ObjectKind,
    /// Text bytes, including synthesised PLT stubs at the end.
    pub text: Vec<u8>,
    /// Read-only data bytes.
    pub rodata: Vec<u8>,
    /// Writable data bytes, including zeroed GOT slots at the end.
    pub data: Vec<u8>,
    /// Size of the zero-initialised `.bss` region.
    pub bss_size: u64,
    /// Module-relative offset of `.rodata`.
    pub rodata_off: u64,
    /// Module-relative offset of `.data`.
    pub data_off: u64,
    /// Module-relative offset of the GOT (inside the data segment).
    pub got_off: u64,
    /// Module-relative offset of `.bss`.
    pub bss_off: u64,
    /// Basic blocks partitioning the text (including PLT stubs).
    pub blocks: Vec<BasicBlock>,
    /// Function spans in layout order (PLT stubs appear as `plt$<name>`).
    pub functions: Vec<FuncSpan>,
    /// All defined symbols.
    pub symbols: BTreeMap<String, SymbolDef>,
    /// PLT entries for imported functions.
    pub plt: Vec<PltEntry>,
    /// Load-time relocations.
    pub dyn_relocs: Vec<DynReloc>,
    /// Entry point offset (executables only).
    pub entry: Option<u64>,
    /// Names of imported functions, in PLT order.
    pub imports: Vec<String>,
}

impl Image {
    /// Total size of the module's address-space footprint in bytes
    /// (text through end of bss).
    pub fn footprint(&self) -> u64 {
        self.bss_off + self.bss_size
    }

    /// Size of the text section in bytes (the paper's "code size" column).
    pub fn text_size(&self) -> u64 {
        self.text.len() as u64
    }

    /// Total number of basic blocks in the text (the paper's "total BB #",
    /// which it obtains with angr).
    pub fn total_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// The absolute address of `symbol` when the module is loaded at
    /// `base`, if defined.
    pub fn symbol_addr(&self, base: u64, symbol: &str) -> Option<u64> {
        self.symbols.get(symbol).map(|def| base + def.offset)
    }

    /// The PLT entry for `symbol`, if the module imports it.
    pub fn plt_entry(&self, symbol: &str) -> Option<&PltEntry> {
        self.plt.iter().find(|entry| entry.name == symbol)
    }

    /// The function span containing module-relative `offset`, if any.
    pub fn function_containing(&self, offset: u64) -> Option<&FuncSpan> {
        self.functions
            .iter()
            .find(|func| offset >= func.offset && offset < func.offset + func.size)
    }

    /// The basic block containing module-relative `offset`, if any.
    pub fn block_containing(&self, offset: u64) -> Option<BasicBlock> {
        match self.blocks.binary_search_by_key(&offset, |b| b.addr) {
            Ok(i) => Some(self.blocks[i]),
            Err(0) => None,
            Err(i) => {
                let candidate = self.blocks[i - 1];
                candidate.contains(offset).then_some(candidate)
            }
        }
    }

    /// All basic blocks whose spans lie inside the named function.
    pub fn blocks_of_function(&self, name: &str) -> Vec<BasicBlock> {
        let Some(func) = self.functions.iter().find(|f| f.name == name) else {
            return Vec::new();
        };
        self.blocks
            .iter()
            .copied()
            .filter(|b| b.addr >= func.offset && b.range().end <= func.offset + func.size)
            .collect()
    }
}

impl fmt::Display for Image {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({:?}): text {}B, rodata {}B, data {}B, bss {}B, {} blocks, {} plt entries",
            self.name,
            self.kind,
            self.text.len(),
            self.rodata.len(),
            self.data.len(),
            self.bss_size,
            self.blocks.len(),
            self.plt.len(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_image() -> Image {
        Image {
            name: "t".into(),
            kind: ObjectKind::Executable,
            text: vec![0x00; 32],
            rodata: vec![],
            data: vec![],
            bss_size: 8,
            rodata_off: 4096,
            data_off: 4096,
            got_off: 4096,
            bss_off: 4096,
            blocks: vec![BasicBlock::new(0, 16), BasicBlock::new(16, 16)],
            functions: vec![FuncSpan {
                name: "f".into(),
                offset: 0,
                size: 32,
            }],
            symbols: BTreeMap::from([(
                "f".to_owned(),
                SymbolDef {
                    offset: 0,
                    kind: SymbolKind::Func,
                    size: 32,
                },
            )]),
            plt: vec![],
            dyn_relocs: vec![],
            entry: Some(0),
            imports: vec![],
        }
    }

    #[test]
    fn footprint_spans_through_bss() {
        assert_eq!(tiny_image().footprint(), 4096 + 8);
    }

    #[test]
    fn block_containing_finds_interior_offsets() {
        let image = tiny_image();
        assert_eq!(image.block_containing(0), Some(BasicBlock::new(0, 16)));
        assert_eq!(image.block_containing(15), Some(BasicBlock::new(0, 16)));
        assert_eq!(image.block_containing(16), Some(BasicBlock::new(16, 16)));
        assert_eq!(image.block_containing(31), Some(BasicBlock::new(16, 16)));
        assert_eq!(image.block_containing(32), None);
    }

    #[test]
    fn symbol_addr_adds_base() {
        assert_eq!(tiny_image().symbol_addr(0x40_0000, "f"), Some(0x40_0000));
        assert_eq!(tiny_image().symbol_addr(0x40_0000, "missing"), None);
    }

    #[test]
    fn blocks_of_function_filters_by_span() {
        let image = tiny_image();
        assert_eq!(image.blocks_of_function("f").len(), 2);
        assert!(image.blocks_of_function("missing").is_empty());
    }
}
