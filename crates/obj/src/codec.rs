//! The on-disk DCO format: serialisation of [`Image`].
//!
//! The process rewriter parses serialised libraries when injecting a
//! signal-handler library into a checkpointed process, just as the paper's
//! implementation parses ELF shared objects with pyelftools (§3.3).

use crate::image::{
    DynReloc, Image, ObjectKind, PltEntry, RelocValue, SymbolDef, SymbolKind,
};
use crate::ObjError;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use dynacut_isa::{BasicBlock, FuncSpan};
use std::collections::BTreeMap;

const MAGIC: &[u8; 4] = b"DCO1";

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_bytes(buf: &mut BytesMut, b: &[u8]) {
    buf.put_u64_le(b.len() as u64);
    buf.put_slice(b);
}

fn get_str(buf: &mut Bytes) -> Result<String, ObjError> {
    if buf.remaining() < 4 {
        return Err(ObjError::BadImage("truncated string length".into()));
    }
    let len = buf.get_u32_le() as usize;
    if buf.remaining() < len {
        return Err(ObjError::BadImage("truncated string body".into()));
    }
    let raw = buf.split_to(len);
    String::from_utf8(raw.to_vec()).map_err(|_| ObjError::BadImage("non-utf8 string".into()))
}

fn get_vec(buf: &mut Bytes) -> Result<Vec<u8>, ObjError> {
    if buf.remaining() < 8 {
        return Err(ObjError::BadImage("truncated byte-vector length".into()));
    }
    let len = buf.get_u64_le() as usize;
    if buf.remaining() < len {
        return Err(ObjError::BadImage("truncated byte-vector body".into()));
    }
    Ok(buf.split_to(len).to_vec())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, ObjError> {
    if buf.remaining() < 8 {
        return Err(ObjError::BadImage("truncated u64".into()));
    }
    Ok(buf.get_u64_le())
}

fn get_u32(buf: &mut Bytes) -> Result<u32, ObjError> {
    if buf.remaining() < 4 {
        return Err(ObjError::BadImage("truncated u32".into()));
    }
    Ok(buf.get_u32_le())
}

fn get_u8(buf: &mut Bytes) -> Result<u8, ObjError> {
    if buf.remaining() < 1 {
        return Err(ObjError::BadImage("truncated u8".into()));
    }
    Ok(buf.get_u8())
}

impl Image {
    /// Serialises the image to the binary DCO format.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        put_str(&mut buf, &self.name);
        buf.put_u8(match self.kind {
            ObjectKind::Executable => 0,
            ObjectKind::SharedLib => 1,
        });
        put_bytes(&mut buf, &self.text);
        put_bytes(&mut buf, &self.rodata);
        put_bytes(&mut buf, &self.data);
        buf.put_u64_le(self.bss_size);
        buf.put_u64_le(self.rodata_off);
        buf.put_u64_le(self.data_off);
        buf.put_u64_le(self.got_off);
        buf.put_u64_le(self.bss_off);
        buf.put_u32_le(self.blocks.len() as u32);
        for block in &self.blocks {
            buf.put_u64_le(block.addr);
            buf.put_u32_le(block.size);
        }
        buf.put_u32_le(self.functions.len() as u32);
        for func in &self.functions {
            put_str(&mut buf, &func.name);
            buf.put_u64_le(func.offset);
            buf.put_u64_le(func.size);
        }
        buf.put_u32_le(self.symbols.len() as u32);
        for (name, def) in &self.symbols {
            put_str(&mut buf, name);
            buf.put_u64_le(def.offset);
            buf.put_u8(match def.kind {
                SymbolKind::Func => 0,
                SymbolKind::Object => 1,
            });
            buf.put_u64_le(def.size);
        }
        buf.put_u32_le(self.plt.len() as u32);
        for entry in &self.plt {
            put_str(&mut buf, &entry.name);
            buf.put_u64_le(entry.stub_offset);
            buf.put_u64_le(entry.got_offset);
        }
        buf.put_u32_le(self.dyn_relocs.len() as u32);
        for reloc in &self.dyn_relocs {
            buf.put_u64_le(reloc.site);
            match &reloc.value {
                RelocValue::Local { offset, addend } => {
                    buf.put_u8(0);
                    buf.put_u64_le(*offset);
                    buf.put_i64_le(*addend);
                }
                RelocValue::Import { symbol, addend } => {
                    buf.put_u8(1);
                    put_str(&mut buf, symbol);
                    buf.put_i64_le(*addend);
                }
            }
        }
        match self.entry {
            Some(entry) => {
                buf.put_u8(1);
                buf.put_u64_le(entry);
            }
            None => buf.put_u8(0),
        }
        buf.put_u32_le(self.imports.len() as u32);
        for import in &self.imports {
            put_str(&mut buf, import);
        }
        buf.to_vec()
    }

    /// Parses a DCO image previously produced by [`Image::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`ObjError::BadImage`] if the input is truncated, has a bad
    /// magic number, or contains malformed fields.
    pub fn from_bytes(raw: &[u8]) -> Result<Image, ObjError> {
        let mut buf = Bytes::copy_from_slice(raw);
        if buf.remaining() < 4 || &buf.split_to(4)[..] != MAGIC {
            return Err(ObjError::BadImage("bad magic".into()));
        }
        let name = get_str(&mut buf)?;
        let kind = match get_u8(&mut buf)? {
            0 => ObjectKind::Executable,
            1 => ObjectKind::SharedLib,
            other => return Err(ObjError::BadImage(format!("bad kind byte {other}"))),
        };
        let text = get_vec(&mut buf)?;
        let rodata = get_vec(&mut buf)?;
        let data = get_vec(&mut buf)?;
        let bss_size = get_u64(&mut buf)?;
        let rodata_off = get_u64(&mut buf)?;
        let data_off = get_u64(&mut buf)?;
        let got_off = get_u64(&mut buf)?;
        let bss_off = get_u64(&mut buf)?;
        let n_blocks = get_u32(&mut buf)?;
        let mut blocks = Vec::with_capacity((n_blocks as usize).min(4096));
        for _ in 0..n_blocks {
            let addr = get_u64(&mut buf)?;
            let size = get_u32(&mut buf)?;
            blocks.push(BasicBlock::new(addr, size));
        }
        let n_funcs = get_u32(&mut buf)?;
        let mut functions = Vec::with_capacity((n_funcs as usize).min(4096));
        for _ in 0..n_funcs {
            let name = get_str(&mut buf)?;
            let offset = get_u64(&mut buf)?;
            let size = get_u64(&mut buf)?;
            functions.push(FuncSpan { name, offset, size });
        }
        let n_syms = get_u32(&mut buf)?;
        let mut symbols = BTreeMap::new();
        for _ in 0..n_syms {
            let name = get_str(&mut buf)?;
            let offset = get_u64(&mut buf)?;
            let kind = match get_u8(&mut buf)? {
                0 => SymbolKind::Func,
                1 => SymbolKind::Object,
                other => return Err(ObjError::BadImage(format!("bad symbol kind {other}"))),
            };
            let size = get_u64(&mut buf)?;
            symbols.insert(name, SymbolDef { offset, kind, size });
        }
        let n_plt = get_u32(&mut buf)?;
        let mut plt = Vec::with_capacity((n_plt as usize).min(4096));
        for _ in 0..n_plt {
            let name = get_str(&mut buf)?;
            let stub_offset = get_u64(&mut buf)?;
            let got_offset = get_u64(&mut buf)?;
            plt.push(PltEntry {
                name,
                stub_offset,
                got_offset,
            });
        }
        let n_relocs = get_u32(&mut buf)?;
        let mut dyn_relocs = Vec::with_capacity((n_relocs as usize).min(4096));
        for _ in 0..n_relocs {
            let site = get_u64(&mut buf)?;
            let value = match get_u8(&mut buf)? {
                0 => {
                    let offset = get_u64(&mut buf)?;
                    let addend = get_u64(&mut buf)? as i64;
                    RelocValue::Local { offset, addend }
                }
                1 => {
                    let symbol = get_str(&mut buf)?;
                    let addend = get_u64(&mut buf)? as i64;
                    RelocValue::Import { symbol, addend }
                }
                other => return Err(ObjError::BadImage(format!("bad reloc kind {other}"))),
            };
            dyn_relocs.push(DynReloc { site, value });
        }
        let entry = match get_u8(&mut buf)? {
            0 => None,
            1 => Some(get_u64(&mut buf)?),
            other => return Err(ObjError::BadImage(format!("bad entry flag {other}"))),
        };
        let n_imports = get_u32(&mut buf)?;
        let mut imports = Vec::with_capacity((n_imports as usize).min(4096));
        for _ in 0..n_imports {
            imports.push(get_str(&mut buf)?);
        }
        Ok(Image {
            name,
            kind,
            text,
            rodata,
            data,
            bss_size,
            rodata_off,
            data_off,
            got_off,
            bss_off,
            blocks,
            functions,
            symbols,
            plt,
            dyn_relocs,
            entry,
            imports,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModuleBuilder;
    use dynacut_isa::{Assembler, Insn, Reg};

    fn sample_image() -> Image {
        let mut lib_asm = Assembler::new();
        lib_asm.func("libc_write");
        lib_asm.push(Insn::Ret);
        let mut lib_builder = ModuleBuilder::new("libc", ObjectKind::SharedLib);
        lib_builder.text(lib_asm.finish().unwrap());
        let libc = lib_builder.link(&[]).unwrap();

        let mut asm = Assembler::new();
        asm.func("_start");
        asm.call_ext("libc_write");
        asm.lea_ext(Reg::R1, "msg", 0);
        asm.movi_ext(Reg::R2, "counter", 0);
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("app", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.rodata("msg", b"hi\n");
        builder.bss("counter", 8);
        builder.entry("_start");
        builder.link(&[&libc]).unwrap()
    }

    #[test]
    fn round_trip_preserves_everything() {
        let image = sample_image();
        let bytes = image.to_bytes();
        let parsed = Image::from_bytes(&bytes).unwrap();
        assert_eq!(parsed, image);
    }

    #[test]
    fn bad_magic_is_rejected() {
        assert!(matches!(
            Image::from_bytes(b"NOPE...."),
            Err(ObjError::BadImage(_))
        ));
    }

    #[test]
    fn truncation_anywhere_is_rejected_not_panicking() {
        let bytes = sample_image().to_bytes();
        for cut in 0..bytes.len() {
            let result = Image::from_bytes(&bytes[..cut]);
            assert!(result.is_err(), "cut at {cut} must fail gracefully");
        }
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(Image::from_bytes(&[]).is_err());
    }
}
