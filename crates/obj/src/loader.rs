//! Load-time placement: turning an [`Image`] plus a base address into
//! memory segments with all relocations applied.

use crate::image::{Image, RelocValue};
use crate::{page_align, ObjError, Perms};

/// One contiguous, uniformly-permissioned memory region produced by
/// [`materialize`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentInit {
    /// Absolute start address (page-aligned).
    pub vaddr: u64,
    /// Initialised bytes (may be shorter than the mapping).
    pub bytes: Vec<u8>,
    /// Zero-filled bytes following `bytes` (the `.bss` tail).
    pub zero_len: u64,
    /// Protection flags.
    pub perms: Perms,
    /// Human-readable name, e.g. `"nginx.text"`.
    pub name: String,
}

impl SegmentInit {
    /// Total mapping length in bytes, rounded up to a whole page.
    pub fn map_len(&self) -> u64 {
        page_align(self.bytes.len() as u64 + self.zero_len)
    }

    /// The absolute end address of the mapping.
    pub fn end(&self) -> u64 {
        self.vaddr + self.map_len()
    }
}

/// Computes the memory segments for loading `image` at `base`, applying
/// every load-time relocation.
///
/// `resolve` maps imported symbol names to absolute addresses (the role of
/// the dynamic linker — or, for DynaCut's injected signal-handler library,
/// of the process rewriter looking up libc symbols in the checkpointed
/// process, paper §3.3).
///
/// # Errors
///
/// Returns [`ObjError::MissingImport`] if `resolve` cannot resolve an
/// imported symbol, and [`ObjError::BadImage`] if a relocation site falls
/// outside the module.
pub fn materialize(
    image: &Image,
    base: u64,
    resolve: impl Fn(&str) -> Option<u64>,
) -> Result<Vec<SegmentInit>, ObjError> {
    assert_eq!(base % crate::PAGE_SIZE, 0, "module base must be page-aligned");

    // Build one flat module byte image (text | pad | rodata | pad | data),
    // patch it, then split into segments.
    let data_end = image.data_off + image.data.len() as u64;
    let mut flat = vec![0u8; data_end as usize];
    flat[..image.text.len()].copy_from_slice(&image.text);
    let ro = image.rodata_off as usize;
    flat[ro..ro + image.rodata.len()].copy_from_slice(&image.rodata);
    let rw = image.data_off as usize;
    flat[rw..rw + image.data.len()].copy_from_slice(&image.data);

    for reloc in &image.dyn_relocs {
        let value = match &reloc.value {
            RelocValue::Local { offset, addend } => {
                (base + offset).wrapping_add_signed(*addend)
            }
            RelocValue::Import { symbol, addend } => resolve(symbol)
                .ok_or_else(|| ObjError::MissingImport {
                    module: image.name.clone(),
                    symbol: symbol.clone(),
                })?
                .wrapping_add_signed(*addend),
        };
        let site = reloc.site as usize;
        if site + 8 > flat.len() {
            return Err(ObjError::BadImage(format!(
                "relocation site {:#x} outside module `{}`",
                reloc.site, image.name
            )));
        }
        flat[site..site + 8].copy_from_slice(&value.to_le_bytes());
    }

    let mut segments = Vec::new();
    // Text: [0, rodata_off) r-x. Includes alignment padding so the segment
    // is whole pages.
    segments.push(SegmentInit {
        vaddr: base,
        bytes: flat[..image.text.len()].to_vec(),
        zero_len: image.rodata_off - image.text.len() as u64,
        perms: Perms::RX,
        name: format!("{}.text", image.name),
    });
    // Rodata: [rodata_off, data_off) r--, may be empty.
    if image.data_off > image.rodata_off {
        segments.push(SegmentInit {
            vaddr: base + image.rodata_off,
            bytes: flat[ro..ro + image.rodata.len()].to_vec(),
            zero_len: image.data_off - image.rodata_off - image.rodata.len() as u64,
            perms: Perms::R,
            name: format!("{}.rodata", image.name),
        });
    }
    // Data + GOT + bss: rw-.
    let data_span = image.data.len() as u64 + image.bss_size;
    if data_span > 0 {
        segments.push(SegmentInit {
            vaddr: base + image.data_off,
            bytes: flat[rw..rw + image.data.len()].to_vec(),
            zero_len: image.bss_size,
            perms: Perms::RW,
            name: format!("{}.data", image.name),
        });
    }
    segments.retain(|s| s.map_len() > 0);
    Ok(segments)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Image, ModuleBuilder, ObjectKind};
    use dynacut_isa::{Assembler, Insn, Reg};

    fn libc() -> Image {
        let mut asm = Assembler::new();
        asm.func("libc_write");
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("libc", ObjectKind::SharedLib);
        builder.text(asm.finish().unwrap());
        builder.link(&[]).unwrap()
    }

    fn app(libc: &Image) -> Image {
        let mut asm = Assembler::new();
        asm.func("_start");
        asm.call_ext("libc_write");
        asm.movi_ext(Reg::R2, "counter", 0);
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("app", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.data("greeting", b"hello world!");
        builder.bss("counter", 8);
        builder.entry("_start");
        builder.link(&[libc]).unwrap()
    }

    #[test]
    fn segments_are_page_aligned_and_disjoint() {
        let libc = libc();
        let image = app(&libc);
        let segments = materialize(&image, 0x40_0000, |s| {
            (s == "libc_write").then_some(0x7000_0000)
        })
        .unwrap();
        assert_eq!(segments.len(), 2); // text (no rodata) + data
        let mut prev_end = 0;
        for segment in &segments {
            assert_eq!(segment.vaddr % crate::PAGE_SIZE, 0);
            assert!(segment.vaddr >= prev_end);
            prev_end = segment.end();
        }
    }

    #[test]
    fn got_slot_receives_resolved_address() {
        let libc = libc();
        let image = app(&libc);
        let segments = materialize(&image, 0x40_0000, |s| {
            (s == "libc_write").then_some(0x7000_1234)
        })
        .unwrap();
        let data_segment = segments.iter().find(|s| s.name == "app.data").unwrap();
        let got_in_segment = (image.got_off - image.data_off) as usize;
        let slot =
            u64::from_le_bytes(data_segment.bytes[got_in_segment..got_in_segment + 8].try_into().unwrap());
        assert_eq!(slot, 0x7000_1234);
    }

    #[test]
    fn local_abs_reloc_gets_base_plus_offset() {
        let libc = libc();
        let image = app(&libc);
        let base = 0x40_0000;
        let segments = materialize(&image, base, |_| Some(0x7000_0000)).unwrap();
        let text_segment = &segments[0];
        // movi_ext site is at offset 2 of the second instruction:
        // call(5 bytes) then movi (opcode+reg at +5,+6; imm at +7).
        let imm = u64::from_le_bytes(text_segment.bytes[7..15].try_into().unwrap());
        let counter = image.symbols["counter"];
        assert_eq!(imm, base + counter.offset);
    }

    #[test]
    fn missing_import_is_reported() {
        let libc = libc();
        let image = app(&libc);
        let err = materialize(&image, 0x40_0000, |_| None).unwrap_err();
        assert!(matches!(
            err,
            ObjError::MissingImport { symbol, .. } if symbol == "libc_write"
        ));
    }

    #[test]
    fn bss_becomes_zero_tail() {
        let libc = libc();
        let image = app(&libc);
        let segments = materialize(&image, 0x40_0000, |_| Some(1)).unwrap();
        let data_segment = segments.iter().find(|s| s.name == "app.data").unwrap();
        assert_eq!(data_segment.zero_len, image.bss_size);
    }
}
