//! Module construction API.

use crate::image::{Image, ObjectKind};
use crate::link;
use crate::ObjError;
use dynacut_isa::TextImage;

/// Where a data definition lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DataSection {
    Rodata,
    Data,
    Bss,
}

#[derive(Debug, Clone)]
pub(crate) struct DataDef {
    pub name: String,
    pub section: DataSection,
    /// Offset within its section.
    pub offset: u64,
    pub size: u64,
}

/// A pointer-sized cell inside `.data` that the loader fills with the
/// absolute address of another symbol.
#[derive(Debug, Clone)]
pub(crate) struct DataPtr {
    /// Offset within `.data` of the 8-byte cell.
    pub offset: u64,
    /// Symbol whose address is stored.
    pub symbol: String,
    /// Constant addend.
    pub addend: i64,
}

/// Incrementally builds a module, then links it into an [`Image`].
///
/// See the crate-level example. The builder follows the non-consuming
/// builder convention: configuration methods take `&mut self`, the terminal
/// [`ModuleBuilder::link`] takes `&self`.
#[derive(Debug)]
pub struct ModuleBuilder {
    pub(crate) name: String,
    pub(crate) kind: ObjectKind,
    pub(crate) text: TextImage,
    pub(crate) rodata: Vec<u8>,
    pub(crate) data: Vec<u8>,
    pub(crate) bss_size: u64,
    pub(crate) defs: Vec<DataDef>,
    pub(crate) data_ptrs: Vec<DataPtr>,
    pub(crate) entry: Option<String>,
}

impl ModuleBuilder {
    /// Creates a builder for a module called `name`.
    pub fn new(name: &str, kind: ObjectKind) -> Self {
        ModuleBuilder {
            name: name.to_owned(),
            kind,
            text: TextImage::default(),
            rodata: Vec::new(),
            data: Vec::new(),
            bss_size: 0,
            defs: Vec::new(),
            data_ptrs: Vec::new(),
            entry: None,
        }
    }

    /// Sets the assembled text (replaces any previous text).
    pub fn text(&mut self, text: TextImage) -> &mut Self {
        self.text = text;
        self
    }

    /// Defines a read-only data symbol with the given initial bytes.
    /// Returns the offset of the symbol within `.rodata`.
    pub fn rodata(&mut self, name: &str, bytes: &[u8]) -> u64 {
        let offset = self.rodata.len() as u64;
        self.rodata.extend_from_slice(bytes);
        self.align_section(DataSection::Rodata);
        self.defs.push(DataDef {
            name: name.to_owned(),
            section: DataSection::Rodata,
            offset,
            size: bytes.len() as u64,
        });
        offset
    }

    /// Defines a writable, initialised data symbol. Returns the offset of
    /// the symbol within `.data`.
    pub fn data(&mut self, name: &str, bytes: &[u8]) -> u64 {
        let offset = self.data.len() as u64;
        self.data.extend_from_slice(bytes);
        self.align_section(DataSection::Data);
        self.defs.push(DataDef {
            name: name.to_owned(),
            section: DataSection::Data,
            offset,
            size: bytes.len() as u64,
        });
        offset
    }

    /// Defines a zero-initialised symbol of `size` bytes in `.bss`.
    pub fn bss(&mut self, name: &str, size: u64) -> &mut Self {
        let offset = self.bss_size;
        self.bss_size += size.max(1).div_ceil(8) * 8;
        self.defs.push(DataDef {
            name: name.to_owned(),
            section: DataSection::Bss,
            offset,
            size,
        });
        self
    }

    /// Defines a pointer table in `.data`: one 8-byte cell per listed
    /// symbol, each filled by the loader with that symbol's absolute
    /// address (a function-pointer dispatch table, as in Redis's command
    /// table).
    pub fn ptr_table(&mut self, name: &str, symbols: &[&str]) -> &mut Self {
        let offset = self.data.len() as u64;
        for (i, symbol) in symbols.iter().enumerate() {
            self.data.extend_from_slice(&0u64.to_le_bytes());
            self.data_ptrs.push(DataPtr {
                offset: offset + (i as u64) * 8,
                symbol: (*symbol).to_owned(),
                addend: 0,
            });
        }
        self.defs.push(DataDef {
            name: name.to_owned(),
            section: DataSection::Data,
            offset,
            size: (symbols.len() as u64) * 8,
        });
        self
    }

    /// Declares the entry symbol (required for executables).
    pub fn entry(&mut self, name: &str) -> &mut Self {
        self.entry = Some(name.to_owned());
        self
    }

    /// Links the module against the exported symbols of `libs`, producing
    /// a loadable [`Image`].
    ///
    /// # Errors
    ///
    /// Fails on unresolved or duplicate symbols, a missing/bad entry for an
    /// executable, cross-module PC-relative data references, or relocation
    /// overflow.
    pub fn link(&self, libs: &[&Image]) -> Result<Image, ObjError> {
        link::link(self, libs)
    }

    /// Pads a section to 8-byte alignment so subsequent symbols are
    /// naturally aligned for `ld8`/`st8`.
    fn align_section(&mut self, section: DataSection) {
        let buf = match section {
            DataSection::Rodata => &mut self.rodata,
            DataSection::Data => &mut self.data,
            DataSection::Bss => return,
        };
        while buf.len() % 8 != 0 {
            buf.push(0);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn data_offsets_are_eight_byte_aligned() {
        let mut builder = ModuleBuilder::new("m", ObjectKind::Executable);
        let a = builder.data("a", &[1, 2, 3]);
        let b = builder.data("b", &[4]);
        assert_eq!(a, 0);
        assert_eq!(b, 8);
    }

    #[test]
    fn bss_accumulates_rounded_sizes() {
        let mut builder = ModuleBuilder::new("m", ObjectKind::Executable);
        builder.bss("x", 3).bss("y", 16);
        assert_eq!(builder.bss_size, 8 + 16);
    }

    #[test]
    fn ptr_table_reserves_one_cell_per_symbol() {
        let mut builder = ModuleBuilder::new("m", ObjectKind::Executable);
        builder.ptr_table("handlers", &["f", "g", "h"]);
        assert_eq!(builder.data.len(), 24);
        assert_eq!(builder.data_ptrs.len(), 3);
        assert_eq!(builder.data_ptrs[2].offset, 16);
    }
}
