//! The linker: resolves relocations, synthesises PLT/GOT, lays out
//! sections.

use crate::builder::{DataSection, ModuleBuilder};
use crate::image::{
    DynReloc, Image, ObjectKind, PltEntry, RelocValue, SymbolDef, SymbolKind, PLT_STUB_SIZE,
};
use crate::{page_align, ObjError};
use dynacut_isa::{encode_into, BasicBlock, FuncSpan, Insn, Reg, RelocKind};
use std::collections::BTreeMap;

/// Links `builder` against the exports of `libs`.
pub(crate) fn link(builder: &ModuleBuilder, libs: &[&Image]) -> Result<Image, ObjError> {
    let text = &builder.text;

    // 1. Import set: every relocation symbol not defined locally, in first-
    //    use order (determines PLT/GOT layout).
    let mut local: BTreeMap<String, (DataSection, u64, u64)> = BTreeMap::new();
    for def in &builder.defs {
        if local
            .insert(def.name.clone(), (def.section, def.offset, def.size))
            .is_some()
        {
            return Err(ObjError::DuplicateSymbol(def.name.clone()));
        }
        if text.labels.contains_key(&def.name) {
            return Err(ObjError::DuplicateSymbol(def.name.clone()));
        }
    }

    let is_local = |symbol: &str| text.labels.contains_key(symbol) || local.contains_key(symbol);

    let find_export = |symbol: &str| -> Option<SymbolDef> {
        libs.iter()
            .find_map(|lib| lib.symbols.get(symbol).copied())
    };

    let mut imports: Vec<String> = Vec::new();
    let note_import = |symbol: &str, imports: &mut Vec<String>| -> Result<(), ObjError> {
        let export = find_export(symbol).ok_or_else(|| {
            ObjError::UnresolvedSymbol(symbol.to_owned())
        })?;
        if export.kind != SymbolKind::Func {
            return Err(ObjError::CrossModuleData(symbol.to_owned()));
        }
        if !imports.iter().any(|i| i == symbol) {
            imports.push(symbol.to_owned());
        }
        Ok(())
    };
    for reloc in &text.relocs {
        if !is_local(&reloc.symbol) && reloc.kind == RelocKind::Rel32 {
            note_import(&reloc.symbol, &mut imports)?;
        }
    }

    // 2. Layout.
    let app_text_len = text.bytes.len() as u64;
    let plt_len = imports.len() as u64 * PLT_STUB_SIZE;
    let text_total = app_text_len + plt_len;
    let rodata_off = page_align(text_total);
    let data_off = page_align(rodata_off + builder.rodata.len() as u64);
    let got_off = data_off + builder.data.len() as u64;
    let got_len = imports.len() as u64 * 8;
    let bss_off = got_off + got_len;

    let section_base = |section: DataSection| -> u64 {
        match section {
            DataSection::Rodata => rodata_off,
            DataSection::Data => data_off,
            DataSection::Bss => bss_off,
        }
    };

    // Module-relative offset of any locally defined symbol.
    let local_offset = |symbol: &str| -> Option<(u64, SymbolKind, u64)> {
        if let Some(&off) = text.labels.get(symbol) {
            let size = text
                .functions
                .iter()
                .find(|f| f.name == symbol)
                .map(|f| f.size)
                .unwrap_or(0);
            return Some((off, SymbolKind::Func, size));
        }
        local
            .get(symbol)
            .map(|&(section, off, size)| (section_base(section) + off, SymbolKind::Object, size))
    };

    let plt_stub_off = |index: usize| app_text_len + index as u64 * PLT_STUB_SIZE;
    let got_slot_off = |index: usize| got_off + index as u64 * 8;

    // 3. Patch text relocations.
    let mut text_bytes = text.bytes.clone();
    let mut dyn_relocs: Vec<DynReloc> = Vec::new();
    for reloc in &text.relocs {
        match reloc.kind {
            RelocKind::Rel32 => {
                let target = if let Some((off, _, _)) = local_offset(&reloc.symbol) {
                    off
                } else {
                    let index = imports
                        .iter()
                        .position(|i| i == &reloc.symbol)
                        .expect("imports collected above");
                    plt_stub_off(index)
                };
                let disp = target as i64 + reloc.addend - reloc.next as i64;
                let disp32 = i32::try_from(disp).map_err(|_| ObjError::RelocOverflow {
                    symbol: reloc.symbol.clone(),
                    displacement: disp,
                })?;
                let site = reloc.site as usize;
                text_bytes[site..site + 4].copy_from_slice(&disp32.to_le_bytes());
            }
            RelocKind::Abs64 => {
                let value = if let Some((off, _, _)) = local_offset(&reloc.symbol) {
                    RelocValue::Local {
                        offset: off,
                        addend: reloc.addend,
                    }
                } else {
                    // Absolute imports bypass the PLT: the loader writes the
                    // final address straight into the immediate.
                    find_export(&reloc.symbol)
                        .ok_or_else(|| ObjError::UnresolvedSymbol(reloc.symbol.clone()))?;
                    RelocValue::Import {
                        symbol: reloc.symbol.clone(),
                        addend: reloc.addend,
                    }
                };
                dyn_relocs.push(DynReloc {
                    site: reloc.site,
                    value,
                });
            }
        }
    }

    // 4. Synthesise PLT stubs and GOT-slot relocations.
    let mut plt = Vec::with_capacity(imports.len());
    let mut blocks: Vec<BasicBlock> = text.blocks.clone();
    let mut functions: Vec<FuncSpan> = text.functions.clone();
    for (index, symbol) in imports.iter().enumerate() {
        let stub_off = plt_stub_off(index);
        let slot_off = got_slot_off(index);
        // lea r14, [pc + disp] ; disp measured from the end of the lea.
        let disp = slot_off as i64 - (stub_off as i64 + 6);
        let disp32 = i32::try_from(disp).map_err(|_| ObjError::RelocOverflow {
            symbol: symbol.clone(),
            displacement: disp,
        })?;
        encode_into(&Insn::Lea(Reg::LT, disp32), &mut text_bytes);
        encode_into(&Insn::Ld(dynacut_isa::Width::B8, Reg::LT, Reg::LT, 0), &mut text_bytes);
        encode_into(&Insn::Jmpr(Reg::LT), &mut text_bytes);
        plt.push(PltEntry {
            name: symbol.clone(),
            stub_offset: stub_off,
            got_offset: slot_off,
        });
        blocks.push(BasicBlock::new(stub_off, PLT_STUB_SIZE as u32));
        functions.push(FuncSpan {
            name: format!("plt${symbol}"),
            offset: stub_off,
            size: PLT_STUB_SIZE,
        });
        dyn_relocs.push(DynReloc {
            site: slot_off,
            value: RelocValue::Import {
                symbol: symbol.clone(),
                addend: 0,
            },
        });
    }
    debug_assert_eq!(text_bytes.len() as u64, text_total);

    // 5. Data-pointer cells.
    for ptr in &builder.data_ptrs {
        let value = if let Some((off, _, _)) = local_offset(&ptr.symbol) {
            RelocValue::Local {
                offset: off,
                addend: ptr.addend,
            }
        } else {
            find_export(&ptr.symbol)
                .ok_or_else(|| ObjError::UnresolvedSymbol(ptr.symbol.clone()))?;
            RelocValue::Import {
                symbol: ptr.symbol.clone(),
                addend: ptr.addend,
            }
        };
        dyn_relocs.push(DynReloc {
            site: data_off + ptr.offset,
            value,
        });
    }

    // 6. Symbol table: functions and data objects.
    let mut symbols: BTreeMap<String, SymbolDef> = BTreeMap::new();
    for func in &text.functions {
        symbols.insert(
            func.name.clone(),
            SymbolDef {
                offset: func.offset,
                kind: SymbolKind::Func,
                size: func.size,
            },
        );
    }
    for def in &builder.defs {
        symbols.insert(
            def.name.clone(),
            SymbolDef {
                offset: section_base(def.section) + def.offset,
                kind: SymbolKind::Object,
                size: def.size,
            },
        );
    }

    // 7. Entry point.
    let entry = match (builder.kind, &builder.entry) {
        (ObjectKind::Executable, None) => return Err(ObjError::MissingEntry),
        (_, Some(name)) => Some(
            text.labels
                .get(name)
                .copied()
                .ok_or_else(|| ObjError::BadEntry(name.clone()))?,
        ),
        (ObjectKind::SharedLib, None) => None,
    };

    // The GOT lives inside the data segment bytes: extend with zeroed slots.
    let mut data = builder.data.clone();
    data.extend(std::iter::repeat_n(0u8, got_len as usize));

    Ok(Image {
        name: builder.name.clone(),
        kind: builder.kind,
        text: text_bytes,
        rodata: builder.rodata.clone(),
        data,
        bss_size: builder.bss_size,
        rodata_off,
        data_off,
        got_off,
        bss_off,
        blocks,
        functions,
        symbols,
        plt,
        dyn_relocs,
        entry,
        imports,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ModuleBuilder;
    use dynacut_isa::Assembler;

    fn lib_with_export(name: &str, func: &str) -> Image {
        let mut asm = Assembler::new();
        asm.func(func);
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new(name, ObjectKind::SharedLib);
        builder.text(asm.finish().unwrap());
        builder.link(&[]).unwrap()
    }

    #[test]
    fn executable_without_entry_fails() {
        let builder = ModuleBuilder::new("m", ObjectKind::Executable);
        assert_eq!(builder.link(&[]), Err(ObjError::MissingEntry));
    }

    #[test]
    fn bad_entry_name_fails() {
        let mut asm = Assembler::new();
        asm.func("main");
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("m", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.entry("not_main");
        assert!(matches!(builder.link(&[]), Err(ObjError::BadEntry(_))));
    }

    #[test]
    fn import_generates_plt_and_got() {
        let libc = lib_with_export("libc", "libc_write");
        let mut asm = Assembler::new();
        asm.func("_start");
        asm.call_ext("libc_write");
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("app", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.entry("_start");
        let image = builder.link(&[&libc]).unwrap();

        assert_eq!(image.imports, vec!["libc_write".to_owned()]);
        assert_eq!(image.plt.len(), 1);
        let entry = &image.plt[0];
        // Stub sits right after application text (call(5) + ret(1) = 6).
        assert_eq!(entry.stub_offset, 6);
        assert_eq!(entry.got_offset, image.got_off);
        // The GOT slot has an import relocation.
        assert!(image.dyn_relocs.iter().any(|r| r.site == entry.got_offset
            && matches!(&r.value, RelocValue::Import { symbol, .. } if symbol == "libc_write")));
        // The call displacement points at the stub: call at 0, next = 5.
        let disp = i32::from_le_bytes(image.text[1..5].try_into().unwrap());
        assert_eq!(disp, entry.stub_offset as i32 - 5);
        // The stub decodes to lea/ld/jmpr.
        let stub = &image.text[entry.stub_offset as usize..];
        let insns = dynacut_isa::decode_all(stub).unwrap();
        assert!(matches!(insns[0].1, Insn::Lea(Reg::R14, _)));
        assert!(matches!(insns[1].1, Insn::Ld(..)));
        assert!(matches!(insns[2].1, Insn::Jmpr(Reg::R14)));
    }

    #[test]
    fn unresolved_symbol_fails() {
        let mut asm = Assembler::new();
        asm.func("_start");
        asm.call_ext("nope");
        let mut builder = ModuleBuilder::new("app", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.entry("_start");
        assert!(matches!(
            builder.link(&[]),
            Err(ObjError::UnresolvedSymbol(s)) if s == "nope"
        ));
    }

    #[test]
    fn duplicate_data_and_label_symbol_fails() {
        let mut asm = Assembler::new();
        asm.func("x");
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("m", ObjectKind::SharedLib);
        builder.text(asm.finish().unwrap());
        builder.data("x", &[0]);
        assert!(matches!(
            builder.link(&[]),
            Err(ObjError::DuplicateSymbol(s)) if s == "x"
        ));
    }

    #[test]
    fn local_lea_to_data_is_resolved_statically() {
        let mut asm = Assembler::new();
        asm.func("_start");
        asm.lea_ext(Reg::R1, "greeting", 0);
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("m", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.rodata("greeting", b"hello");
        builder.entry("_start");
        let image = builder.link(&[]).unwrap();
        // lea at 0, next = 6; greeting at rodata_off.
        let disp = i32::from_le_bytes(image.text[2..6].try_into().unwrap());
        assert_eq!(disp as u64, image.rodata_off - 6);
        assert!(image.dyn_relocs.is_empty());
    }

    #[test]
    fn movi_ext_local_becomes_dyn_reloc() {
        let mut asm = Assembler::new();
        asm.func("_start");
        asm.movi_ext(Reg::R1, "table", 8);
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("m", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.data("table", &[0; 16]);
        builder.entry("_start");
        let image = builder.link(&[]).unwrap();
        assert_eq!(image.dyn_relocs.len(), 1);
        let reloc = &image.dyn_relocs[0];
        assert_eq!(reloc.site, 2);
        assert!(matches!(
            &reloc.value,
            RelocValue::Local { offset, addend: 8 } if *offset == image.data_off
        ));
    }

    #[test]
    fn rel32_to_external_data_is_rejected() {
        let mut lib_builder = ModuleBuilder::new("lib", ObjectKind::SharedLib);
        lib_builder.data("shared_table", &[0; 8]);
        let lib = lib_builder.link(&[]).unwrap();

        let mut asm = Assembler::new();
        asm.func("_start");
        asm.lea_ext(Reg::R1, "shared_table", 0);
        let mut builder = ModuleBuilder::new("app", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.entry("_start");
        assert!(matches!(
            builder.link(&[&lib]),
            Err(ObjError::CrossModuleData(_))
        ));
    }

    #[test]
    fn ptr_table_cells_get_relocs() {
        let mut asm = Assembler::new();
        asm.func("handler_a");
        asm.push(Insn::Ret);
        asm.func("handler_b");
        asm.push(Insn::Ret);
        asm.func("_start");
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("m", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.ptr_table("dispatch", &["handler_a", "handler_b"]);
        builder.entry("_start");
        let image = builder.link(&[]).unwrap();
        let cells: Vec<_> = image
            .dyn_relocs
            .iter()
            .filter(|r| matches!(r.value, RelocValue::Local { .. }))
            .collect();
        assert_eq!(cells.len(), 2);
        assert_eq!(cells[0].site, image.data_off);
        assert_eq!(cells[1].site, image.data_off + 8);
    }

    #[test]
    fn layout_is_page_aligned_and_ordered() {
        let libc = lib_with_export("libc", "f");
        let mut asm = Assembler::new();
        asm.func("_start");
        asm.call_ext("f");
        asm.push(Insn::Ret);
        let mut builder = ModuleBuilder::new("m", ObjectKind::Executable);
        builder.text(asm.finish().unwrap());
        builder.rodata("ro", &[1; 100]);
        builder.data("rw", &[2; 50]);
        builder.bss("zero", 1000);
        builder.entry("_start");
        let image = builder.link(&[&libc]).unwrap();
        assert_eq!(image.rodata_off % crate::PAGE_SIZE, 0);
        assert_eq!(image.data_off % crate::PAGE_SIZE, 0);
        assert!(image.rodata_off >= image.text.len() as u64);
        assert!(image.data_off >= image.rodata_off + image.rodata.len() as u64);
        assert_eq!(image.got_off, image.data_off + 56); // 50 rounded to 56
        assert_eq!(image.bss_off, image.got_off + 8);
        assert_eq!(image.footprint(), image.bss_off + 1000);
    }
}
