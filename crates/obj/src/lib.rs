//! # dynacut-obj — the DCO object format, linker and loader
//!
//! DynaCut operates on binaries "at the binary level; no source code is
//! needed" (paper §1). This crate is the reproduction's analogue of the ELF
//! toolchain the paper relies on (static linker, `ld.so` semantics,
//! `pyelftools` parsing):
//!
//! * [`ModuleBuilder`] turns assembled text plus data definitions into a
//!   linked, loadable [`Image`] — an executable or a position-independent
//!   shared library,
//! * the linker synthesises **PLT stubs and GOT slots** for imported
//!   functions ([`PltEntry`]), which is what makes the paper's ret2plt /
//!   BROP attack-surface experiments (§4.2) expressible,
//! * [`Image::to_bytes`]/[`Image::from_bytes`] give the on-disk DCO format
//!   that the process rewriter parses when it injects a signal-handler
//!   library into a checkpointed process (paper §3.3, "very similar to a
//!   traditional ELF loader"),
//! * [`materialize`] computes the memory segments and load-time relocation
//!   patches for a chosen base address.
//!
//! ```
//! use dynacut_isa::{Assembler, Insn, Reg};
//! use dynacut_obj::{materialize, ModuleBuilder, ObjectKind, PAGE_SIZE};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut asm = Assembler::new();
//! asm.func("_start");
//! asm.push(Insn::Movi(Reg::R0, 0)); // SYS_exit
//! asm.push(Insn::Syscall);
//! let mut builder = ModuleBuilder::new("tiny", ObjectKind::Executable);
//! builder.text(asm.finish()?);
//! builder.entry("_start");
//! let image = builder.link(&[])?;
//! let segments = materialize(&image, 0x40_0000, |_| None)?;
//! assert_eq!(segments[0].vaddr % PAGE_SIZE, 0);
//! # Ok(())
//! # }
//! ```

mod builder;
mod codec;
mod error;
mod image;
mod link;
mod loader;

pub use builder::ModuleBuilder;
pub use error::ObjError;
pub use image::{DynReloc, Image, ObjectKind, PltEntry, RelocValue, SymbolDef, SymbolKind};
pub use loader::{materialize, SegmentInit};

/// Page size of the DCVM, in bytes (same as x86-64 small pages).
pub const PAGE_SIZE: u64 = 4096;

/// Memory protection flags of a segment or VMA.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perms {
    /// Readable.
    pub read: bool,
    /// Writable.
    pub write: bool,
    /// Executable.
    pub exec: bool,
}

impl Perms {
    /// Read-only.
    pub const R: Perms = Perms {
        read: true,
        write: false,
        exec: false,
    };
    /// Read-write.
    pub const RW: Perms = Perms {
        read: true,
        write: true,
        exec: false,
    };
    /// Read-execute (text segments).
    pub const RX: Perms = Perms {
        read: true,
        write: false,
        exec: true,
    };
    /// No access (guard pages / unmapped placeholders).
    pub const NONE: Perms = Perms {
        read: false,
        write: false,
        exec: false,
    };
}

impl std::fmt::Display for Perms {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.read { 'r' } else { '-' },
            if self.write { 'w' } else { '-' },
            if self.exec { 'x' } else { '-' }
        )
    }
}

/// Rounds `value` up to the next multiple of [`PAGE_SIZE`].
pub fn page_align(value: u64) -> u64 {
    value.div_ceil(PAGE_SIZE) * PAGE_SIZE
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_align_rounds_up() {
        assert_eq!(page_align(0), 0);
        assert_eq!(page_align(1), PAGE_SIZE);
        assert_eq!(page_align(PAGE_SIZE), PAGE_SIZE);
        assert_eq!(page_align(PAGE_SIZE + 1), 2 * PAGE_SIZE);
    }

    #[test]
    fn perms_display_mirrors_proc_maps() {
        assert_eq!(Perms::RX.to_string(), "r-x");
        assert_eq!(Perms::RW.to_string(), "rw-");
        assert_eq!(Perms::R.to_string(), "r--");
        assert_eq!(Perms::NONE.to_string(), "---");
    }
}
