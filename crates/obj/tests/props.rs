//! Property tests for the DCO linker and codec.

use dynacut_isa::{Assembler, Insn, Reg};
use dynacut_obj::{materialize, Image, ModuleBuilder, ObjectKind, PAGE_SIZE};
use proptest::prelude::*;

/// Generates a small module with arbitrary function/data composition.
fn arb_module() -> impl Strategy<Value = Image> {
    (
        1usize..8,                                       // functions
        0usize..4,                                       // rodata symbols
        0usize..4,                                       // data symbols
        0usize..3,                                       // bss symbols
        proptest::collection::vec(any::<u8>(), 1..64),   // data payload
    )
        .prop_map(|(funcs, rodatas, datas, bsses, payload)| {
            let mut asm = Assembler::new();
            for index in 0..funcs {
                asm.func(&format!("f{index}"));
                asm.push(Insn::Movi(Reg::R1, index as u64));
                if index > 0 {
                    asm.call(&format!("f{}", index - 1));
                }
                asm.push(Insn::Ret);
            }
            asm.func("_start");
            asm.call("f0");
            asm.push(Insn::Ret);
            let mut builder = ModuleBuilder::new("prop", ObjectKind::Executable);
            builder.text(asm.finish().expect("assembles"));
            for index in 0..rodatas {
                builder.rodata(&format!("ro{index}"), &payload);
            }
            for index in 0..datas {
                builder.data(&format!("rw{index}"), &payload);
            }
            for index in 0..bsses {
                builder.bss(&format!("zero{index}"), payload.len() as u64);
            }
            builder.entry("_start");
            builder.link(&[]).expect("links")
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Serialisation round trip is the identity for arbitrary modules.
    #[test]
    fn dco_codec_round_trips(image in arb_module()) {
        let bytes = image.to_bytes();
        let parsed = Image::from_bytes(&bytes).expect("parses");
        prop_assert_eq!(parsed, image);
    }

    /// Truncating serialized output anywhere fails gracefully.
    #[test]
    fn dco_truncation_never_panics(image in arb_module(), cut in any::<proptest::sample::Index>()) {
        let bytes = image.to_bytes();
        let cut = cut.index(bytes.len());
        prop_assert!(Image::from_bytes(&bytes[..cut]).is_err());
    }

    /// Mutating a single byte of the header region either fails or parses
    /// into *something* — never panics.
    #[test]
    fn dco_bitflips_never_panic(image in arb_module(), position in any::<proptest::sample::Index>(), flip in 1u8..=255) {
        let mut bytes = image.to_bytes();
        let position = position.index(bytes.len());
        bytes[position] ^= flip;
        let _ = Image::from_bytes(&bytes); // must not panic
    }

    /// Layout invariants hold for every linked module: page-aligned
    /// section starts, ordered sections, and symbols inside their
    /// sections.
    #[test]
    fn layout_invariants(image in arb_module()) {
        prop_assert_eq!(image.rodata_off % PAGE_SIZE, 0);
        prop_assert_eq!(image.data_off % PAGE_SIZE, 0);
        prop_assert!(image.text.len() as u64 <= image.rodata_off);
        prop_assert!(image.rodata_off + image.rodata.len() as u64 <= image.data_off);
        prop_assert!(image.got_off >= image.data_off);
        prop_assert!(image.bss_off >= image.got_off);
        for (name, def) in &image.symbols {
            prop_assert!(
                def.offset < image.footprint(),
                "symbol {name} at {:#x} outside footprint {:#x}",
                def.offset,
                image.footprint()
            );
        }
        // Blocks partition the text.
        let mut cursor = 0u64;
        for block in &image.blocks {
            prop_assert_eq!(block.addr, cursor);
            cursor = block.range().end;
        }
        prop_assert_eq!(cursor, image.text.len() as u64);
    }

    /// Materialisation at any page-aligned base produces disjoint,
    /// page-aligned segments covering the footprint.
    #[test]
    fn materialize_invariants(image in arb_module(), base_page in 1u64..1_000_000) {
        let base = base_page * PAGE_SIZE;
        let segments = materialize(&image, base, |_| Some(0)).expect("materializes");
        let mut prev_end = 0u64;
        for segment in &segments {
            prop_assert_eq!(segment.vaddr % PAGE_SIZE, 0);
            prop_assert_eq!(segment.map_len() % PAGE_SIZE, 0);
            prop_assert!(segment.vaddr >= prev_end, "segments disjoint and ordered");
            prev_end = segment.end();
        }
        prop_assert!(prev_end <= base + dynacut_obj::page_align(image.footprint()));
    }
}
