//! Initialization-code shedding (paper §3.1 + Figure 9): trace the
//! Lighttpd analogue under the drcov-style tracer, nudge at the end of
//! initialization, diff the two coverage graphs, and wipe every block
//! that only ran during start-up — while the server keeps serving.
//!
//! ```text
//! cargo run --example init_shedding
//! ```

use dynacut::{Downtime, DynaCut, RewritePlan};
use dynacut_analysis::{init_only_blocks, CovGraph};
use dynacut_apps::{libc::guest_libc, lighttpd, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_isa::BasicBlock;
use dynacut_trace::Tracer;
use dynacut_vm::{Kernel, LoadSpec};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let libc = guest_libc();
    let exe = lighttpd::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(lighttpd::CONFIG_PATH, &lighttpd::config_file());
    let tracer = Tracer::install(&mut kernel);
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let pid = kernel.spawn(&spec)?;
    tracer.track(&kernel, pid)?;

    // Initialization phase, observed via the ready event — then the
    // nudge dumps CovG_init and clears the coverage cache.
    kernel
        .run_until_event(EVENT_READY, 100_000_000)
        .expect("boot");
    let init_log = tracer.nudge();
    println!(
        "init phase: {} distinct blocks executed ({} bytes)",
        init_log.block_count(),
        init_log.covered_bytes()
    );

    // Serving phase: a few requests, then CovG_serving.
    let conn = kernel.client_connect(lighttpd::PORT)?;
    for request in [&b"GET /a\n"[..], b"HEAD /b\n", b"GET /c\n"] {
        kernel.client_request(conn, request, 10_000_000)?;
    }
    let serving_log = tracer.snapshot();
    println!(
        "serving phase: {} distinct blocks executed",
        serving_log.block_count()
    );

    // tracediff: blk ∈ CovG_init ∧ blk ∉ CovG_serving, app module only.
    let init_cov = CovGraph::from_log(&init_log);
    let serving_cov = CovGraph::from_log(&serving_log);
    let shed = init_only_blocks(&init_cov, &serving_cov).retain_modules(&[lighttpd::MODULE]);
    println!(
        "tracediff: {} initialization-only blocks ({} bytes) to shed",
        shed.len(),
        shed.covered_bytes()
    );

    // Shed them from the live process.
    let blocks: Vec<BasicBlock> = shed
        .module_blocks(lighttpd::MODULE)
        .into_iter()
        .map(|(offset, size)| BasicBlock::new(offset, size))
        .collect();
    let mut dynacut = DynaCut::new(registry);
    let plan = RewritePlan::new()
        .remove_init_blocks(lighttpd::MODULE, blocks)
        .with_downtime(Downtime::None);
    let report = dynacut.customize(&mut kernel, &[pid], &plan)?;
    println!(
        "shed {} blocks / {} bytes of int3 in {:?}",
        report.blocks_disabled,
        report.bytes_written,
        report.timings.total()
    );

    // The server still serves on the same connection.
    let reply = kernel.client_request(conn, b"GET /after\n", 10_000_000)?;
    println!(
        "after shedding: GET /after -> {}",
        String::from_utf8_lossy(&reply)
            .lines()
            .next()
            .unwrap_or("<none>")
    );

    // drcov-format output, as the paper's tooling produces.
    println!("\nfirst lines of the init-phase drcov log:");
    for line in init_log.to_drcov_text().lines().take(8) {
        println!("  {line}");
    }
    Ok(())
}
