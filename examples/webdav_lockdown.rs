//! The paper's Figure 5 scenario on the multi-process Nginx analogue:
//! keep a web server read-only during peak hours by blocking the WebDAV
//! `PUT`/`DELETE` methods with a `403 Forbidden` redirect, then open a
//! short administration window to upload content, then lock down again.
//!
//! ```text
//! cargo run --example webdav_lockdown
//! ```

use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_apps::{libc::guest_libc, nginx, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_vm::{Kernel, LoadSpec};
use std::sync::Arc;

fn show(kernel: &mut Kernel, conn: dynacut_vm::ClientConn, request: &[u8]) {
    let reply = kernel
        .client_request(conn, request, 10_000_000)
        .expect("request");
    let line = String::from_utf8_lossy(&reply);
    let status = line.lines().next().unwrap_or("<no reply>");
    println!("  {:30} -> {status}", String::from_utf8_lossy(request).trim_end());
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let libc = guest_libc();
    let exe = nginx::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(nginx::CONFIG_PATH, &nginx::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    kernel.spawn(&spec)?;
    kernel
        .run_until_event(EVENT_READY, 100_000_000)
        .expect("boot");
    let pids = kernel.pids();
    println!(
        "nginx analogue is up: master {} + worker {}",
        pids[0], pids[1]
    );

    let conn = kernel.client_connect(nginx::PORT)?;
    println!("\nvanilla behaviour:");
    show(&mut kernel, conn, b"GET /index.html\n");
    show(&mut kernel, conn, b"PUT /report.txt quarterly numbers");
    show(&mut kernel, conn, b"DELETE /report.txt");

    // Lock down: PUT/DELETE answer 403 via the injected fault handler.
    let mut dynacut = DynaCut::new(registry);
    let put = Feature::from_function("HTTP PUT", &exe, "ngx_put_handler")
        .unwrap()
        .redirect_to_function(&exe, nginx::ERROR_HANDLER)
        .unwrap();
    let delete = Feature::from_function("HTTP DELETE", &exe, "ngx_delete_handler")
        .unwrap()
        .redirect_to_function(&exe, nginx::ERROR_HANDLER)
        .unwrap();
    let lockdown = RewritePlan::new()
        .disable(put.clone())
        .disable(delete.clone())
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let report = dynacut.customize(&mut kernel, &pids, &lockdown)?;
    println!(
        "\nlockdown applied to both processes in {:?} ({} bytes of int3):",
        report.timings.total(),
        report.bytes_written
    );
    show(&mut kernel, conn, b"GET /index.html\n");
    show(&mut kernel, conn, b"PUT /report.txt defaced!!");
    show(&mut kernel, conn, b"DELETE /index.html");

    // Administration window: the operator re-enables uploads briefly.
    let window = RewritePlan::new()
        .enable(put.clone())
        .enable(delete.clone())
        .with_downtime(Downtime::None);
    let pids = kernel.pids();
    dynacut.customize(&mut kernel, &pids, &window)?;
    println!("\nadministration window open:");
    show(&mut kernel, conn, b"PUT /report.txt new content");
    show(&mut kernel, conn, b"DELETE /stale.txt");

    // And closed again.
    let relock = RewritePlan::new()
        .disable(put)
        .disable(delete)
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let pids = kernel.pids();
    dynacut.customize(&mut kernel, &pids, &relock)?;
    println!("\nwindow closed:");
    show(&mut kernel, conn, b"PUT /report.txt too late");
    show(&mut kernel, conn, b"GET /index.html\n");

    println!("\nthe server never restarted; the TCP connection survived every rewrite.");
    Ok(())
}
