//! Quickstart: boot the Redis analogue in the DCVM, dynamically block the
//! `SET` command at run time without restarting the server, then
//! re-enable it — the smallest possible DynaCut tour.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_apps::{libc::guest_libc, redis, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_vm::{Kernel, LoadSpec};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Build the guest world: libc + the Redis analogue, then boot it.
    let libc = guest_libc();
    let exe = redis::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(redis::CONFIG_PATH, &redis::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    let pid = kernel.spawn(&spec)?;
    kernel
        .run_until_event(EVENT_READY, 100_000_000)
        .expect("server initializes");
    println!("redis analogue is up as {pid}");

    // 2. Talk to it over the simulated TCP stack.
    let conn = kernel.client_connect(redis::PORT)?;
    let reply = kernel.client_request(conn, b"SET greeting hello\n", 5_000_000)?;
    println!("SET greeting hello  -> {}", String::from_utf8_lossy(&reply));
    let reply = kernel.client_request(conn, b"GET greeting\n", 5_000_000)?;
    println!("GET greeting        -> {}", String::from_utf8_lossy(&reply));

    // 3. DynaCut: block the SET feature on the LIVE process. The process
    //    is checkpointed, the image is rewritten (int3 over the handler
    //    entry), a fault-handler library is injected, and the process is
    //    restored — the TCP connection survives.
    let mut dynacut = DynaCut::new(registry);
    let set_feature = Feature::from_function("SET", &exe, "rd_cmd_set")
        .expect("handler exists")
        .redirect_to_function(&exe, redis::ERROR_HANDLER)
        .expect("error path exists");
    let plan = RewritePlan::new()
        .disable(set_feature.clone())
        .with_fault_policy(FaultPolicy::Redirect)
        .with_downtime(Downtime::None);
    let report = dynacut.customize(&mut kernel, &[pid], &plan)?;
    println!(
        "\ncustomized in {:?} (checkpoint {:?}, rewrite {:?}, handler {:?}, restore {:?})",
        report.timings.total(),
        report.timings.checkpoint,
        report.timings.disable_code,
        report.timings.insert_sighandler,
        report.timings.restore,
    );

    // 4. Same connection: SET is now politely refused, GET still works.
    let reply = kernel.client_request(conn, b"SET greeting bye\n", 5_000_000)?;
    println!("SET greeting bye    -> {}", String::from_utf8_lossy(&reply));
    let reply = kernel.client_request(conn, b"GET greeting\n", 5_000_000)?;
    println!("GET greeting        -> {}", String::from_utf8_lossy(&reply));

    // 5. Re-enable: original instruction bytes come back from the binary.
    let plan = RewritePlan::new()
        .enable(set_feature)
        .with_downtime(Downtime::None);
    dynacut.customize(&mut kernel, &[pid], &plan)?;
    let reply = kernel.client_request(conn, b"SET greeting again\n", 5_000_000)?;
    println!("\nafter re-enable:");
    println!("SET greeting again  -> {}", String::from_utf8_lossy(&reply));
    let reply = kernel.client_request(conn, b"GET greeting\n", 5_000_000)?;
    println!("GET greeting        -> {}", String::from_utf8_lossy(&reply));

    // 6. The flight recorder journalled both cycles: per-phase durations,
    //    trap hits on the blocked feature, and the metrics registry.
    println!("\nflight journal ({} events, {} dropped):", kernel.flight().len(), kernel.flight().dropped());
    for event in kernel.flight().iter() {
        match &event.kind {
            dynacut::EventKind::PhaseEnd { phase, duration_ns } => {
                println!("  [{:>6}] {phase} took {duration_ns} ns", event.seq);
            }
            dynacut::EventKind::CustomizeCommit => {
                println!("  [{:>6}] cycle committed", event.seq);
            }
            dynacut::EventKind::TrapHit { pc, handled } => {
                println!("  [{:>6}] trap at {pc:#x} (handled: {handled})", event.seq);
            }
            _ => {}
        }
    }
    println!("counters:");
    for (name, value) in kernel.flight().metrics().counters() {
        println!("  {name} = {value}");
    }
    Ok(())
}
