//! The §4.2 attack-surface study: which PLT entries stay reachable after
//! initialization, and why removing `fork@plt` defeats BROP-style
//! attacks on the Nginx analogue.
//!
//! ```text
//! cargo run --example brop_surface
//! ```

use dynacut::{Downtime, DynaCut, Feature, RewritePlan};
use dynacut_analysis::{plt_usage, CovGraph};
use dynacut_apps::{libc::guest_libc, nginx, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_isa::BasicBlock;
use dynacut_trace::Tracer;
use dynacut_vm::{Kernel, LoadSpec, Signal};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let libc = guest_libc();
    let exe = nginx::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(nginx::CONFIG_PATH, &nginx::config_file());
    let tracer = Tracer::install(&mut kernel);
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    let first = kernel.spawn(&spec)?;
    tracer.track(&kernel, first)?;
    kernel
        .run_until_event(EVENT_READY, 100_000_000)
        .expect("boot");
    let pids = kernel.pids();
    for &pid in &pids {
        let _ = tracer.track(&kernel, pid);
    }

    // Phase coverage.
    let init = CovGraph::from_log(&tracer.nudge());
    let conn = kernel.client_connect(nginx::PORT)?;
    for request in [&b"GET /\n"[..], b"HEAD /\n", b"GET /x\n"] {
        kernel.client_request(conn, request, 10_000_000)?;
    }
    let serving = CovGraph::from_log(&tracer.snapshot());

    // Classify the PLT.
    let usage = plt_usage(&exe, nginx::MODULE, &init, &serving);
    let (removable, executed) = usage.removable_ratio();
    println!("nginx PLT surface: {executed} entries executed; {removable} used only during init\n");
    println!("removable after initialization:");
    for name in &usage.removable_post_init {
        println!("  {name}{}", if name == "libc_fork" { "   <- BROP needs this" } else { "" });
    }
    println!("still required while serving:");
    for name in &usage.still_needed {
        println!("  {name}");
    }

    // Disable the init-only PLT stubs (including fork) in the live
    // processes.
    let mut blocks: Vec<BasicBlock> = Vec::new();
    for name in &usage.removable_post_init {
        let entry = exe.plt_entry(name).expect("plt entry");
        blocks.push(exe.block_containing(entry.stub_offset).expect("stub block"));
    }
    let mut dynacut = DynaCut::new(registry);
    let plan = RewritePlan::new()
        .disable(Feature::new("init-only PLT stubs", nginx::MODULE, blocks))
        .with_block_policy(dynacut::BlockPolicy::WipeBlocks)
        .with_downtime(Downtime::None);
    dynacut.customize(&mut kernel, &pids, &plan)?;
    println!("\nwiped {} init-only PLT stubs in both processes.", removable);

    // The serving path is unaffected…
    let reply = kernel.client_request(conn, b"GET /ok\n", 10_000_000)?;
    println!(
        "GET /ok -> {}",
        String::from_utf8_lossy(&reply).lines().next().unwrap_or("")
    );

    // …but a BROP-style attacker who redirects control into fork@plt now
    // hits a trap and the worker dies instead of respawning probes.
    let worker = *pids.last().unwrap();
    let fork_stub = {
        let proc = kernel.process(worker)?;
        let module = proc
            .modules
            .iter()
            .find(|m| m.image.name == nginx::MODULE)
            .unwrap();
        module.base + exe.plt_entry("libc_fork").unwrap().stub_offset
    };
    {
        let proc = kernel.process_mut(worker)?;
        proc.cpu.pc = fork_stub; // simulated hijack
        proc.state = dynacut_vm::ProcState::Runnable;
    }
    kernel.run_for(1_000_000);
    match kernel.exit_status(worker) {
        Some(status) if status.fatal_signal == Some(Signal::Sigtrap) => {
            println!("\nhijacked jump into fork@plt -> SIGTRAP, worker killed: BROP probe defeated");
        }
        other => println!("\nunexpected outcome: {other:?}"),
    }
    Ok(())
}
