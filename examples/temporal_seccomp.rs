//! Temporal syscall specialization through process rewriting (paper §5,
//! after Ghavamnia et al.): after initialization, the Lighttpd analogue
//! is restricted to the five syscalls its event loop actually needs.
//! Everything else — including a hijacked `fork` or `open` — kills the
//! process with `SIGSYS`. The paper's point: unlike a seccomp filter set
//! at startup, a *rewritten* filter can be installed (and relaxed) at any
//! phase boundary.
//!
//! ```text
//! cargo run --example temporal_seccomp
//! ```

use dynacut::{Downtime, DynaCut, Profiler, RewritePlan};
use dynacut_apps::{libc::guest_libc, lighttpd, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_vm::{Kernel, LoadSpec, ProcState, Sysno};
use std::sync::Arc;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let libc = guest_libc();
    let exe = lighttpd::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(lighttpd::CONFIG_PATH, &lighttpd::config_file());
    let profiler = Profiler::install(&mut kernel);
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let libc_image = Arc::clone(&spec.libs[0]);
    let pid = kernel.spawn(&spec)?;
    profiler.track(&kernel, pid)?;
    kernel.run_until_event(EVENT_READY, 200_000_000).expect("boot");

    // During init the server opened its config file, bound its socket,
    // mapped its heap — all syscalls it never needs again.
    println!("server initialized; restricting to the serving syscall set");
    let mut dynacut = DynaCut::new(registry);
    let plan = RewritePlan::new()
        .restrict_syscalls(&[
            Sysno::Read,
            Sysno::Write,
            Sysno::Accept,
            Sysno::Close,
            Sysno::Exit,
        ])
        .with_downtime(Downtime::None);
    dynacut.customize(&mut kernel, &[pid], &plan)?;

    // Serving is untouched.
    let conn = kernel.client_connect(lighttpd::PORT)?;
    let reply = kernel.client_request(conn, b"GET /\n", 10_000_000)?;
    println!(
        "GET / -> {}",
        String::from_utf8_lossy(&reply).lines().next().unwrap_or("")
    );

    // An attacker who hijacks control into libc_open now dies instantly.
    let open_addr = {
        let proc = kernel.process(pid)?;
        let base = proc
            .modules
            .iter()
            .find(|m| m.image.name == "libc")
            .unwrap()
            .base;
        base + libc_image.symbols["libc_open"].offset
    };
    {
        let proc = kernel.process_mut(pid)?;
        proc.cpu.pc = open_addr; // simulated hijack
        proc.state = ProcState::Runnable;
    }
    kernel.run_for(1_000_000);
    match kernel.exit_status(pid) {
        Some(status) => println!(
            "hijacked jump into libc_open -> {}: filter enforced",
            status
                .fatal_signal
                .map(|s| s.to_string())
                .unwrap_or_else(|| "exit".into())
        ),
        None => println!("unexpected: server survived the hijack"),
    }
    Ok(())
}
