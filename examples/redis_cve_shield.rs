//! Table 1 live: fire the modelled Redis exploits (STRALGO LCS integer
//! overflow ≈ CVE-2021-32625, SETRANGE OOB ≈ CVE-2019-10192/3, CONFIG
//! overflow ≈ CVE-2016-8339) against a vanilla server — watch it die —
//! and against a DynaCut-shielded server — watch it shrug.
//!
//! ```text
//! cargo run --example redis_cve_shield
//! ```

use dynacut::{Downtime, DynaCut, FaultPolicy, Feature, RewritePlan};
use dynacut_apps::{libc::guest_libc, redis, EVENT_READY};
use dynacut_criu::ModuleRegistry;
use dynacut_vm::{Kernel, LoadSpec, Pid};
use std::sync::Arc;

struct Booted {
    kernel: Kernel,
    pid: Pid,
    exe: Arc<dynacut_obj::Image>,
    registry: ModuleRegistry,
}

fn boot() -> Booted {
    let libc = guest_libc();
    let exe = redis::image(&libc);
    let mut kernel = Kernel::new();
    kernel.add_file(redis::CONFIG_PATH, &redis::config_file());
    let spec = LoadSpec::with_libs(exe, vec![libc]);
    let mut registry = ModuleRegistry::new();
    registry.insert(Arc::clone(&spec.exe));
    for lib in &spec.libs {
        registry.insert(Arc::clone(lib));
    }
    let exe = Arc::clone(&spec.exe);
    let pid = kernel.spawn(&spec).expect("spawn");
    kernel
        .run_until_event(EVENT_READY, 100_000_000)
        .expect("boot");
    Booted {
        kernel,
        pid,
        exe,
        registry,
    }
}

fn fire(booted: &mut Booted, exploit: &str) -> String {
    let Ok(conn) = booted.kernel.client_connect(redis::PORT) else {
        return "<connection refused: server dead>".into();
    };
    let reply = booted
        .kernel
        .client_request(conn, exploit.as_bytes(), 10_000_000)
        .expect("request");
    let _ = booted.kernel.client_close(conn);
    if reply.is_empty() {
        match booted.kernel.exit_status(booted.pid) {
            Some(status) => format!(
                "<server CRASHED: {}>",
                status
                    .fatal_signal
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("exit {}", status.code))
            ),
            None => "<no reply>".into(),
        }
    } else {
        String::from_utf8_lossy(&reply).trim_end().to_owned()
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let exploits: [(&str, &str, String); 3] = [
        (
            "CVE-2021-32625/29477",
            "rd_cmd_stralgo",
            format!("STRALGO {} {}\n", "a".repeat(32), "b".repeat(32)),
        ),
        (
            "CVE-2019-10192/10193",
            "rd_cmd_setrange",
            "SETRANGE 5000 xyz\n".to_owned(),
        ),
        (
            "CVE-2016-8339",
            "rd_cmd_config",
            format!("CONFIG {}\n", "v".repeat(64)),
        ),
    ];

    for (cve, handler, exploit) in &exploits {
        println!("== {cve} ==");
        // Vanilla server: the exploit lands.
        let mut vanilla = boot();
        println!("  vanilla:  {}", fire(&mut vanilla, exploit));

        // Shielded server: the vulnerable command is blocked at run time.
        let mut shielded = boot();
        let mut dynacut = DynaCut::new(shielded.registry.clone());
        let feature = Feature::from_function(handler, &shielded.exe, handler)
            .unwrap()
            .redirect_to_function(&shielded.exe, redis::ERROR_HANDLER)
            .unwrap();
        let plan = RewritePlan::new()
            .disable(feature)
            .with_fault_policy(FaultPolicy::Redirect)
            .with_downtime(Downtime::None);
        let pid = shielded.pid;
        dynacut.customize(&mut shielded.kernel, &[pid], &plan)?;
        println!("  shielded: {}", fire(&mut shielded, exploit));
        // The shielded server still serves everything else.
        println!("  shielded: {}", fire(&mut shielded, "SET k v\n"));
        println!("  shielded: {}\n", fire(&mut shielded, "GET k\n"));
    }
    println!("blocked commands can be re-enabled instantly when a patched build ships.");
    Ok(())
}
